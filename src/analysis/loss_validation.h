// Table 1 machinery (§5.1): month-link validation of congestion inferences
// against high-frequency loss measurements. For each month of data for one
// (VP, link):
//   - eligibility: the link was significantly congested (>= 1 day with >= 4%
//     day-link congestion) and both interfaces answered loss probes;
//   - restrict to month-links with a statistically significant difference in
//     far-end loss between congested and uncongested periods;
//   - far-end test: far loss (congested) > far loss (uncongested)?
//   - localization test: far loss (congested) > near loss (congested)?
// Both tests use the two-sample binomial proportion test at p < 0.05.
#pragma once

#include <string>
#include <vector>

#include "analysis/classify.h"
#include "lossprobe/lossprobe.h"
#include "stats/tests.h"

namespace manic::analysis {

struct MonthLinkResult {
  std::string vp;
  Ipv4Addr far_addr;
  int month_index = 0;
  // Filtering state.
  bool eligible = false;             // congested enough + both ends answered
  bool significant_far_diff = false; // |far cong - far uncong| significant
  // The two §5.1 tests (valid only when significant_far_diff).
  bool far_end_test = false;
  bool localization_test = false;
  // Observed loss rates (fractions).
  double far_congested = 0.0;
  double far_uncongested = 0.0;
  double near_congested = 0.0;
  long long congested_windows = 0;
  long long uncongested_windows = 0;
};

struct Table1Summary {
  int month_links_total = 0;      // eligible month-links examined
  int with_significant_diff = 0;  // the 145-link analogue
  int both_tests = 0;             // far-end + localization   (81% row)
  int far_only = 0;               // far-end only             (8% row)
  int contradicting = 0;          // far loss decreased       (11% row)
  void Add(const MonthLinkResult& r);
};

// Evaluates one month-link. `inference` must cover the month (t0/days
// aligned to the inference window used to classify intervals); loss series
// are read from `db`. `probes_per_window` converts loss percentages back to
// Binomial counts for the proportion tests.
MonthLinkResult EvaluateMonthLink(const tsdb::Database& db,
                                  const LinkInference& inference,
                                  const infer::DayGrid& far_grid,
                                  const infer::DayGrid& near_grid,
                                  const std::string& vp_name,
                                  Ipv4Addr far_addr, TimeSec month_start,
                                  TimeSec month_end,
                                  int probes_per_window = 300,
                                  double alpha = 0.05);

}  // namespace manic::analysis
