#include "analysis/report.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace manic::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {

// Display width in code points (sparkline cells are multi-byte UTF-8).
std::size_t GlyphWidth(const std::string& s) {
  std::size_t w = 0;
  for (const char c : s) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++w;
  }
  return w;
}

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '%' && c != '+' && c != '<') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TextTable::Render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = GlyphWidth(headers_[c]);
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], GlyphWidth(row[c]));
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells, bool numeric_ok) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = numeric_ok && LooksNumeric(cells[c]);
      const std::size_t pad = width[c] - GlyphWidth(cells[c]);
      os << ' ';
      if (right) os << std::string(pad, ' ');
      os << cells[c];
      if (!right) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  emit_row(headers_, false);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return os.str();
}

std::string TextTable::Fmt(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string TextTable::FmtOrDash(double value, int decimals) {
  return value < 0.0 ? "-" : Fmt(value, decimals);
}

std::string Sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double max_v = 0.0;
  for (const double v : values) max_v = std::max(max_v, v);
  std::string out;
  for (const double v : values) {
    if (v < 0.0) {
      out += ' ';
    } else if (max_v <= 0.0) {
      out += kBlocks[0];
    } else {
      const int idx = std::min(
          7, static_cast<int>(std::floor(v / max_v * 7.999)));
      out += kBlocks[idx];
    }
  }
  return out;
}

}  // namespace manic::analysis
