#include "analysis/dashboard.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "lossprobe/lossprobe.h"
#include "tslp/tslp.h"

namespace manic::analysis {

namespace {

// Heat ramp for RTT elevation above the baseline.
char HeatCell(double elevation_ms) {
  if (std::isnan(elevation_ms)) return '.';
  if (elevation_ms < 3.0) return ' ';
  if (elevation_ms < 7.0) return '-';
  if (elevation_ms < 15.0) return '+';
  if (elevation_ms < 30.0) return '*';
  return '#';
}

}  // namespace

std::string RenderLinkDashboard(const tsdb::Database& db,
                                const std::string& vp_name,
                                topo::Ipv4Addr far_addr, stats::TimeSec t0,
                                const DashboardConfig& config) {
  std::ostringstream os;
  const stats::TimeSec t1 =
      t0 + static_cast<stats::TimeSec>(config.days) * 86400;
  const auto far = db.QueryMerged(
      tslp::kMeasurementRtt,
      tslp::TslpScheduler::Tags(vp_name, far_addr, tslp::kSideFar), t0, t1);
  const auto near = db.QueryMerged(
      tslp::kMeasurementRtt,
      tslp::TslpScheduler::Tags(vp_name, far_addr, tslp::kSideNear), t0, t1);

  os << "=== link " << far_addr.ToString() << " seen from " << vp_name
     << " ===\n";
  if (far.empty()) {
    os << "(no far-side measurements)\n";
    return os.str();
  }

  double baseline = 1e18, worst = 0.0;
  for (const auto& p : far.points()) {
    baseline = std::min(baseline, p.value);
    worst = std::max(worst, p.value);
  }
  double near_baseline = 1e18;
  for (const auto& p : near.points()) {
    near_baseline = std::min(near_baseline, p.value);
  }

  // Inference over the rendered window.
  infer::AutocorrConfig cfg = config.autocorr;
  cfg.window_days = config.days;
  cfg.min_elevated_days = std::max(3, config.days / 2);
  const LinkInference inference =
      InferLink(db, vp_name, far_addr, t0, config.days, cfg);

  // Heat map: one row per day, one column per bin.
  const int cols = static_cast<int>(86400 / config.bin_width);
  const auto bins = far.BinDense(t0, t1, config.bin_width, stats::BinAgg::kMin);
  os << "far-RTT elevation heat map (cols = UTC hours; ' '<3ms '-'<7 '+'<15 "
        "'*'<30 '#'>=30):\n";
  os << "      ";
  for (int c = 0; c < cols; ++c) os << (c % 6 == 0 ? '|' : ' ');
  os << '\n';
  for (int d = 0; d < config.days; ++d) {
    os << "day" << (d < 10 ? " " : "") << d << " ";
    for (int c = 0; c < cols; ++c) {
      const std::size_t slot = static_cast<std::size_t>(d) * cols + c;
      if (slot >= bins.size() || !bins[slot]) {
        os << '.';
      } else {
        os << HeatCell(*bins[slot] - baseline);
      }
    }
    os << '\n';
  }

  // Recurring-window ruler.
  if (inference.result.recurring) {
    os << "window";
    const int per_col =
        cfg.intervals_per_day / std::max(1, cols);
    for (int c = 0; c < cols; ++c) {
      bool in = false;
      for (int k = 0; k < per_col; ++k) {
        in = in || inference.result.InWindow(c * per_col + k,
                                             cfg.intervals_per_day);
      }
      os << (in ? '^' : ' ');
    }
    os << "  (recurring congestion window)\n";
  } else {
    os << "no recurring congestion inferred ("
       << (inference.result.reject == infer::RejectReason::kNoPeak
               ? "no peak"
               : "filtered")
       << ")\n";
  }

  // Optional loss overlay (mean loss % per column across the window).
  const auto loss = db.QueryMerged(
      lossprobe::kMeasurementLoss,
      tslp::TslpScheduler::Tags(vp_name, far_addr, tslp::kSideFar), t0, t1);
  if (!loss.empty()) {
    std::vector<double> sums(static_cast<std::size_t>(cols), 0.0);
    std::vector<int> counts(static_cast<std::size_t>(cols), 0);
    for (const auto& p : loss.points()) {
      const int c = static_cast<int>(((p.t - t0) % 86400) / config.bin_width);
      sums[static_cast<std::size_t>(c)] += p.value;
      ++counts[static_cast<std::size_t>(c)];
    }
    os << "loss%% ";
    for (int c = 0; c < cols; ++c) {
      const double mean = counts[static_cast<std::size_t>(c)] == 0
                              ? 0.0
                              : sums[static_cast<std::size_t>(c)] /
                                    counts[static_cast<std::size_t>(c)];
      os << (mean < 0.1 ? ' ' : mean < 1.0 ? '-' : mean < 5.0 ? '*' : '#');
    }
    os << "  (mean far loss per hour)\n";
  }

  os << "baseline " << baseline << " ms, worst bin " << worst
     << " ms, near baseline "
     << (near_baseline < 1e17 ? std::to_string(near_baseline) : "n/a")
     << " ms, " << far.size() << " far samples over " << config.days
     << " days\n";
  return os.str();
}

}  // namespace manic::analysis
