#include "analysis/loss_validation.h"

#include <cmath>

#include "tslp/tslp.h"

namespace manic::analysis {

void Table1Summary::Add(const MonthLinkResult& r) {
  if (!r.eligible) return;
  ++month_links_total;
  if (!r.significant_far_diff) return;
  ++with_significant_diff;
  if (r.far_end_test && r.localization_test) {
    ++both_tests;
  } else if (r.far_end_test) {
    ++far_only;
  } else {
    ++contradicting;
  }
}

MonthLinkResult EvaluateMonthLink(const tsdb::Database& db,
                                  const LinkInference& inference,
                                  const infer::DayGrid& far_grid,
                                  const infer::DayGrid& near_grid,
                                  const std::string& vp_name,
                                  Ipv4Addr far_addr, TimeSec month_start,
                                  TimeSec month_end, int probes_per_window,
                                  double alpha) {
  MonthLinkResult result;
  result.vp = vp_name;
  result.far_addr = far_addr;

  // Eligibility 1: at least one day in the month with >= 4% congestion.
  bool any_congested_day = false;
  if (inference.result.recurring) {
    for (TimeSec day_start = month_start; day_start < month_end;
         day_start += 86400) {
      const int day = static_cast<int>((day_start - inference.t0) / 86400);
      if (day < 0 ||
          day >= static_cast<int>(inference.result.day_fraction.size())) {
        continue;
      }
      if (inference.result.day_fraction[static_cast<std::size_t>(day)] >=
          0.04) {
        any_congested_day = true;
        break;
      }
    }
  }
  if (!any_congested_day) return result;

  // Loss series for the month.
  const stats::TimeSeries far_loss = db.QueryMerged(
      lossprobe::kMeasurementLoss,
      tslp::TslpScheduler::Tags(vp_name, far_addr, tslp::kSideFar),
      month_start, month_end);
  const stats::TimeSeries near_loss = db.QueryMerged(
      lossprobe::kMeasurementLoss,
      tslp::TslpScheduler::Tags(vp_name, far_addr, tslp::kSideNear),
      month_start, month_end);
  // Eligibility 2: both ends responded (non-trivial data, not 100% loss).
  if (far_loss.size() < 100 || near_loss.size() < 100) return result;
  double far_mean = 0.0;
  for (const auto& p : far_loss.points()) far_mean += p.value;
  far_mean /= static_cast<double>(far_loss.size());
  if (far_mean > 95.0) return result;  // far interface effectively silent
  result.eligible = true;

  // Accumulate Binomial counts over congested / uncongested windows.
  long long cong_lost = 0, cong_trials = 0;
  long long uncong_lost = 0, uncong_trials = 0;
  long long near_cong_lost = 0, near_cong_trials = 0;
  for (const auto& p : far_loss.points()) {
    const long long lost = std::llround(p.value / 100.0 * probes_per_window);
    if (inference.IntervalCongested(p.t, far_grid, near_grid)) {
      cong_lost += lost;
      cong_trials += probes_per_window;
      ++result.congested_windows;
    } else {
      uncong_lost += lost;
      uncong_trials += probes_per_window;
      ++result.uncongested_windows;
    }
  }
  for (const auto& p : near_loss.points()) {
    if (inference.IntervalCongested(p.t, far_grid, near_grid)) {
      near_cong_lost += std::llround(p.value / 100.0 * probes_per_window);
      near_cong_trials += probes_per_window;
    }
  }
  if (cong_trials == 0 || uncong_trials == 0) {
    result.eligible = false;  // no classified split within the month
    return result;
  }
  result.far_congested = static_cast<double>(cong_lost) / cong_trials;
  result.far_uncongested = static_cast<double>(uncong_lost) / uncong_trials;
  result.near_congested = near_cong_trials > 0
                              ? static_cast<double>(near_cong_lost) /
                                    near_cong_trials
                              : 0.0;

  // Significance of the far-end difference (either sign).
  const auto diff = stats::BinomialProportionTest(cong_lost, cong_trials,
                                                  uncong_lost, uncong_trials);
  result.significant_far_diff = diff.Significant(alpha);
  if (!result.significant_far_diff) return result;

  // Far-end test: loss significantly HIGHER during congestion.
  result.far_end_test = diff.statistic > 0.0;

  // Localization test: far loss (congested) significantly exceeds near loss
  // (congested).
  const auto loc = stats::BinomialProportionTest(
      cong_lost, cong_trials, near_cong_lost,
      near_cong_trials > 0 ? near_cong_trials : 1);
  result.localization_test =
      result.far_end_test && loc.Significant(alpha) && loc.statistic > 0.0;
  return result;
}

}  // namespace manic::analysis
