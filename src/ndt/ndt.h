// NDT-style throughput measurement (§3.4): upload/download TCP throughput
// tests from a VP to a measurement server, server selection via traceroutes
// so the tested path crosses a border link of interest, and a post-test
// traceroute identifying the interdomain link on the forward path. TCP
// steady-state throughput follows the Mathis model
//     T = MSS / (RTT * sqrt(2p/3))
// capped by the access plan rate, evaluated at several instants across the
// 10-second test (TSLP-correlated drops in Table 2 emerge from the path's
// loss/RTT at test time). Invasive-measurement pacing (every 15 minutes in
// peak hours, hourly otherwise) is provided by TestDueAt.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "probe/probe.h"
#include "stats/rng.h"
#include "tsdb/tsdb.h"

namespace manic::ndt {

using sim::SimNetwork;
using sim::TimeSec;
using topo::Asn;
using topo::Ipv4Addr;
using topo::VpId;

inline constexpr const char* kMeasurementDownload = "ndt_download_mbps";
inline constexpr const char* kMeasurementUpload = "ndt_upload_mbps";

struct NdtServer {
  std::string name;
  Ipv4Addr addr;
  Asn asn = 0;
};

struct NdtResult {
  double download_mbps = 0.0;
  double upload_mbps = 0.0;
  double rtt_ms = 0.0;
  TimeSec when = 0;
  // Far address of the border link the forward path crossed (if it matched
  // one of the known TSLP links).
  std::optional<Ipv4Addr> forward_link;
  Ipv4Addr server;
  bool ok = false;
};

class NdtClient {
 public:
  struct Config {
    double access_plan_mbps = 100.0;  // last-mile cap
    double mss_bytes = 1460.0;
    double test_duration_s = 10.0;
    double noise_sigma = 0.05;  // multiplicative measurement noise
    int samples_per_test = 5;   // instants averaged across the test
    std::uint16_t flow = 0x4E44;
  };

  NdtClient(SimNetwork& net, VpId vp, Config config);
  NdtClient(SimNetwork& net, VpId vp) : NdtClient(net, vp, Config{}) {}

  // Runs upload+download tests against a server at time t, then a
  // traceroute to locate the border link crossed (matched against
  // `known_far_addrs`).
  NdtResult RunTest(const NdtServer& server, TimeSec t,
                    const std::set<std::uint32_t>& known_far_addrs = {});

  // Server selection: traceroute toward every candidate; keep servers whose
  // forward path crosses one of `congested_far_addrs`; among those pick the
  // lowest-RTT one (the paper picks the server closest to the VP).
  std::optional<NdtServer> SelectServer(
      const std::vector<NdtServer>& servers,
      const std::set<std::uint32_t>& congested_far_addrs, TimeSec t);

  // True when a test is due at time t under the §3.5 pacing: every 15
  // minutes from 17:00-23:00 VP-local, hourly otherwise.
  static bool TestDueAt(TimeSec t, int vp_utc_offset_hours);

  // Mathis-model steady-state throughput (Mbps).
  static double MathisThroughputMbps(double rtt_ms, double loss_prob,
                                     double mss_bytes, double cap_mbps);

 private:
  SimNetwork* net_ = nullptr;
  VpId vp_ = 0;
  Config config_;
  stats::Rng rng_;
};

}  // namespace manic::ndt
