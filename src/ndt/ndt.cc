#include "ndt/ndt.h"

#include <algorithm>
#include <cmath>

#include "stats/calendar.h"

namespace manic::ndt {

NdtClient::NdtClient(SimNetwork& net, VpId vp, Config config)
    : net_(&net),
      vp_(vp),
      config_(config),
      rng_(stats::Rng::HashMix(0x4E44, vp)) {}

double NdtClient::MathisThroughputMbps(double rtt_ms, double loss_prob,
                                       double mss_bytes, double cap_mbps) {
  if (rtt_ms <= 0.0) return cap_mbps;
  const double p = std::max(loss_prob, 1e-6);
  const double rtt_s = rtt_ms / 1e3;
  const double tput_bps = mss_bytes * 8.0 / (rtt_s * std::sqrt(2.0 * p / 3.0));
  return std::min(cap_mbps, tput_bps / 1e6);
}

bool NdtClient::TestDueAt(TimeSec t, int vp_utc_offset_hours) {
  const double hour = stats::LocalHour(t, vp_utc_offset_hours);
  const TimeSec sod = stats::SecondOfDayUtc(
      t + static_cast<TimeSec>(vp_utc_offset_hours) * stats::kSecPerHour);
  const bool peak = hour >= 17.0 && hour < 23.0;
  const TimeSec cadence = peak ? 15 * stats::kSecPerMin : stats::kSecPerHour;
  return sod % cadence == 0;
}

NdtResult NdtClient::RunTest(const NdtServer& server, TimeSec t,
                             const std::set<std::uint32_t>& known_far_addrs) {
  NdtResult result;
  result.when = t;
  result.server = server.addr;
  const sim::FlowId flow{config_.flow};

  double down_acc = 0.0, up_acc = 0.0, rtt_acc = 0.0;
  int ok_samples = 0;
  for (int i = 0; i < config_.samples_per_test; ++i) {
    const TimeSec when =
        t + static_cast<TimeSec>(i * config_.test_duration_s /
                                 std::max(1, config_.samples_per_test - 1));
    const sim::PathMetrics m = net_->MetricsFor(vp_, server.addr, flow, when);
    if (!m.reachable) continue;
    ++ok_samples;
    rtt_acc += m.rtt_ms;
    down_acc += MathisThroughputMbps(m.rtt_ms, m.loss_down, config_.mss_bytes,
                                     config_.access_plan_mbps);
    up_acc += MathisThroughputMbps(m.rtt_ms, m.loss_up, config_.mss_bytes,
                                   config_.access_plan_mbps);
  }
  if (ok_samples == 0) return result;
  const double noise = std::exp(rng_.Normal(0.0, config_.noise_sigma));
  result.ok = true;
  result.rtt_ms = rtt_acc / ok_samples;
  result.download_mbps = down_acc / ok_samples * noise;
  result.upload_mbps = up_acc / ok_samples *
                       std::exp(rng_.Normal(0.0, config_.noise_sigma));

  // Post-test traceroute: identify the border link on the forward path.
  probe::Prober prober(*net_, vp_);
  const probe::TracerouteResult trace = prober.Traceroute(server.addr, flow, t);
  for (const probe::TracerouteHop& hop : trace.hops) {
    if (hop.addr && known_far_addrs.contains(hop.addr->value())) {
      result.forward_link = *hop.addr;
      break;
    }
  }
  return result;
}

std::optional<NdtServer> NdtClient::SelectServer(
    const std::vector<NdtServer>& servers,
    const std::set<std::uint32_t>& congested_far_addrs, TimeSec t) {
  probe::Prober prober(*net_, vp_);
  std::optional<NdtServer> best;
  double best_rtt = std::numeric_limits<double>::infinity();
  for (const NdtServer& server : servers) {
    const probe::TracerouteResult trace =
        prober.Traceroute(server.addr, sim::FlowId{config_.flow}, t);
    bool crosses = false;
    for (const probe::TracerouteHop& hop : trace.hops) {
      if (hop.addr && congested_far_addrs.contains(hop.addr->value())) {
        crosses = true;
        break;
      }
    }
    if (!crosses || !trace.reached) continue;
    const double rtt = trace.hops.back().rtt_ms;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = server;
    }
  }
  return best;
}

}  // namespace manic::ndt
