#include "tslp/tslp.h"

#include <algorithm>

namespace manic::tslp {

TslpScheduler::TslpScheduler(SimNetwork& net, VpId vp, tsdb::Database& db,
                             Config config)
    : net_(&net), vp_(vp), db_(&db), config_(config) {
  vp_name_ = net.topology().vp(vp).name;
}

tsdb::TagSet TslpScheduler::Tags(const std::string& vp_name, Ipv4Addr link_far,
                                 const char* side) {
  return tsdb::TagSet{
      {"vp", vp_name}, {"link", link_far.ToString()}, {"side", side}};
}

void TslpScheduler::UpdateProbingSet(const bdrmap::BdrmapResult& borders) {
  std::vector<TslpTarget> next;
  next.reserve(borders.links.size());

  for (const bdrmap::BorderLink& link : borders.links) {
    TslpTarget target;
    target.far_addr = link.far_addr;
    target.near_addr = link.near_addr;
    target.neighbor = link.neighbor;

    // Stickiness: carry over destinations that still see the link.
    const auto prev = std::find_if(
        targets_.begin(), targets_.end(), [&](const TslpTarget& t) {
          return t.far_addr == link.far_addr;
        });
    if (prev != targets_.end()) {
      for (const TslpDest& d : prev->dests) {
        if (!d.lost_visibility &&
            static_cast<int>(target.dests.size()) < config_.max_dests) {
          TslpDest kept = d;
          kept.consecutive_misses = 0;
          target.dests.push_back(kept);
        }
      }
    }

    // Fill remaining slots: prefer destinations originated by the neighbor;
    // overflow candidates become backups for reactive repair.
    auto have = [&](Ipv4Addr dst) {
      const auto match = [&](const TslpDest& d) { return d.dst == dst; };
      return std::any_of(target.dests.begin(), target.dests.end(), match) ||
             std::any_of(target.backups.begin(), target.backups.end(), match);
    };
    for (const bool neighbor_pass : {true, false}) {
      for (const bdrmap::BorderDest& d : link.dests) {
        if (neighbor_pass != (d.origin == link.neighbor) || have(d.dst)) {
          continue;
        }
        const TslpDest dest{d.dst, d.flow, d.far_ttl, d.origin, 0, false};
        if (static_cast<int>(target.dests.size()) < config_.max_dests) {
          target.dests.push_back(dest);
        } else if (static_cast<int>(target.backups.size()) <
                   config_.max_backups) {
          target.backups.push_back(dest);
        }
      }
    }
    if (!target.dests.empty()) next.push_back(std::move(target));
  }

  // Enforce the 100 pps budget: each destination costs 2 probes per round.
  const double rounds_s = static_cast<double>(config_.round_interval);
  probe::RateBudget budget(config_.pps_budget);
  std::vector<TslpTarget> admitted;
  dropped_for_budget_ = 0;
  for (TslpTarget& t : next) {
    const double cost = 2.0 * static_cast<double>(t.dests.size());
    if (budget.Commit(cost, rounds_s)) {
      admitted.push_back(std::move(t));
    } else {
      ++dropped_for_budget_;
    }
  }
  targets_ = std::move(admitted);
}

void TslpScheduler::RunRound(TimeSec t) {
  for (TslpTarget& target : targets_) {
    // Reactive repair: promote a backup for any destination that lost
    // visibility of the link, instead of waiting for the next bdrmap cycle.
    for (TslpDest& dest : target.dests) {
      if (dest.lost_visibility && !target.backups.empty()) {
        dest = target.backups.back();
        target.backups.pop_back();
        ++repaired_;
      }
    }
    for (TslpDest& dest : target.dests) {
      if (dest.lost_visibility) continue;
      const sim::FlowId flow{dest.flow};

      const sim::ProbeReply near_reply =
          net_->Probe(vp_, dest.dst, dest.far_ttl - 1, flow, t);
      ++probes_;
      ++expected_;
      if (near_reply.outcome == sim::ProbeOutcome::kTtlExpired) {
        ++answered_;
        db_->Write(kMeasurementRtt,
                   [&] {
                     tsdb::TagSet tags = Tags(vp_name_, target.far_addr, kSideNear);
                     tags.Set("dst", dest.dst.ToString());
                     return tags;
                   }(),
                   t, near_reply.rtt_ms);
      }

      const sim::ProbeReply far_reply =
          net_->Probe(vp_, dest.dst, dest.far_ttl, flow, t);
      ++probes_;
      ++expected_;
      if (far_reply.outcome != sim::ProbeOutcome::kLost) ++answered_;
      if (far_reply.outcome == sim::ProbeOutcome::kTtlExpired &&
          far_reply.responder == target.far_addr) {
        dest.consecutive_misses = 0;
        db_->Write(kMeasurementRtt,
                   [&] {
                     tsdb::TagSet tags = Tags(vp_name_, target.far_addr, kSideFar);
                     tags.Set("dst", dest.dst.ToString());
                     return tags;
                   }(),
                   t, far_reply.rtt_ms);
      } else if (far_reply.outcome != sim::ProbeOutcome::kLost) {
        // Wrong responder (or the probe reached the destination outright):
        // the route toward this destination no longer crosses the target
        // link; after repeated misses stop using it (a backup is promoted at
        // the next round, or bdrmap replaces it next cycle).
        if (++dest.consecutive_misses >= config_.visibility_miss_limit) {
          dest.lost_visibility = true;
        }
      }
    }
  }
}

}  // namespace manic::tslp
