#include "tslp/tslp.h"

#include <algorithm>

namespace manic::tslp {

namespace {

// Noise salts decoupling near- and far-side telemetry-drop draws.
constexpr std::uint64_t kNearNoise = 0x4EA2;
constexpr std::uint64_t kFarNoise = 0xFA52;

}  // namespace

TslpScheduler::TslpScheduler(SimNetwork& net, VpId vp, tsdb::Database& db,
                             Config config)
    : net_(&net), vp_(vp), db_(&db), config_(config), prober_(net, vp) {
  vp_name_ = net.topology().vp(vp).name;
}

tsdb::TagSet TslpScheduler::Tags(const std::string& vp_name, Ipv4Addr link_far,
                                 const char* side) {
  return tsdb::TagSet{
      {"vp", vp_name}, {"link", link_far.ToString()}, {"side", side}};
}

void TslpScheduler::UpdateProbingSet(const bdrmap::BdrmapResult& borders) {
  std::vector<TslpTarget> next;
  next.reserve(borders.links.size());

  for (const bdrmap::BorderLink& link : borders.links) {
    TslpTarget target;
    target.far_addr = link.far_addr;
    target.near_addr = link.near_addr;
    target.neighbor = link.neighbor;

    // Stickiness: carry over destinations that still see the link.
    const auto prev = std::find_if(
        targets_.begin(), targets_.end(), [&](const TslpTarget& t) {
          return t.far_addr == link.far_addr;
        });
    if (prev != targets_.end()) {
      for (const TslpDest& d : prev->dests) {
        if (!d.lost_visibility &&
            static_cast<int>(target.dests.size()) < config_.max_dests) {
          TslpDest kept = d;
          kept.consecutive_misses = 0;
          // manic-lint: allow(layout: alloc-scale) -- capped at max_dests
          target.dests.push_back(kept);  // (default 10) per link, build-time.
        }
      }
    }

    // Fill remaining slots: prefer destinations originated by the neighbor;
    // overflow candidates become backups for reactive repair.
    auto have = [&](Ipv4Addr dst) {
      const auto match = [&](const TslpDest& d) { return d.dst == dst; };
      return std::any_of(target.dests.begin(), target.dests.end(), match) ||
             std::any_of(target.backups.begin(), target.backups.end(), match);
    };
    for (const bool neighbor_pass : {true, false}) {
      for (const bdrmap::BorderDest& d : link.dests) {
        if (neighbor_pass != (d.origin == link.neighbor) || have(d.dst)) {
          continue;
        }
        const TslpDest dest{d.dst, d.flow, d.far_ttl, d.origin, 0, false};
        if (static_cast<int>(target.dests.size()) < config_.max_dests) {
          // manic-lint: allow(layout: alloc-scale) -- capped at max_dests.
          target.dests.push_back(dest);
        } else if (static_cast<int>(target.backups.size()) <
                   config_.max_backups) {
          // manic-lint: allow(layout: alloc-scale) -- capped at max_backups.
          target.backups.push_back(dest);
        }
      }
    }
    if (!target.dests.empty()) next.push_back(std::move(target));
  }

  // Enforce the 100 pps budget: each destination costs 2 probes per round.
  const double rounds_s = static_cast<double>(config_.round_interval);
  probe::RateBudget budget(config_.pps_budget);
  std::vector<TslpTarget> admitted;
  dropped_for_budget_ = 0;
  for (TslpTarget& t : next) {
    const double cost = 2.0 * static_cast<double>(t.dests.size());
    if (budget.Commit(cost, rounds_s)) {
      admitted.push_back(std::move(t));
    } else {
      ++dropped_for_budget_;
    }
  }
  targets_ = std::move(admitted);
}

void TslpScheduler::RunRound(TimeSec t) {
  const sim::FaultHook* hook = net_->fault_hook();
  const bool vp_up = hook == nullptr || hook->VpUpAt(vp_, t);
  // The host clock's error shifts every recorded timestamp.
  const TimeSec t_rec = t + (hook != nullptr ? hook->ClockSkewAt(vp_, t) : 0);
  const std::uint64_t e0 = expected_;
  const std::uint64_t a0 = answered_;

  // A write lost on the way to the backend disappears silently: no data, no
  // gap marker — the hole Coverage() surfaces via longest_gap.
  const auto write = [&](const char* side, std::uint64_t side_key,
                         Ipv4Addr far_addr, const TslpDest& dest,
                         const sim::ProbeReply* reply) {
    if (hook != nullptr &&
        hook->DropTsdbWriteAt(
            vp_, t, stats::Rng::HashMix(dest.dst.value(), side_key))) {
      return;
    }
    tsdb::TagSet tags = Tags(vp_name_, far_addr, side);
    tags.Set("dst", dest.dst.ToString());
    if (reply != nullptr) {
      db_->Write(kMeasurementRtt, tags, t_rec, reply->rtt_ms);
    } else {
      // Probed but nothing usable came back: an explicit gap.
      db_->WriteMissing(kMeasurementRtt, tags, t_rec);
    }
  };

  for (TslpTarget& target : targets_) {
    // Reactive repair: promote a backup for any destination that lost
    // visibility of the link, instead of waiting for the next bdrmap cycle.
    for (TslpDest& dest : target.dests) {
      if (dest.lost_visibility && !target.backups.empty()) {
        dest = target.backups.back();
        target.backups.pop_back();
        ++repaired_;
      }
    }
    for (TslpDest& dest : target.dests) {
      if (dest.lost_visibility) continue;
      if (!vp_up) {
        // The round was scheduled but the VP is off the air: both probes are
        // owed and unanswered, and the series record explicit gaps (the
        // scheduler journals its own downtime on recovery).
        expected_ += 2;
        write(kSideNear, kNearNoise, target.far_addr, dest, nullptr);
        write(kSideFar, kFarNoise, target.far_addr, dest, nullptr);
        continue;
      }
      const sim::FlowId flow{dest.flow};

      const probe::Prober::RetriedReply near_try = prober_.TtlProbeRetrying(
          dest.dst, dest.far_ttl - 1, flow, t, config_.retry);
      probes_ += near_try.attempts;
      ++expected_;
      if (near_try.reply.outcome == sim::ProbeOutcome::kTtlExpired) {
        ++answered_;
        write(kSideNear, kNearNoise, target.far_addr, dest, &near_try.reply);
      } else {
        write(kSideNear, kNearNoise, target.far_addr, dest, nullptr);
      }

      const probe::Prober::RetriedReply far_try = prober_.TtlProbeRetrying(
          dest.dst, dest.far_ttl, flow, t, config_.retry);
      const sim::ProbeReply& far_reply = far_try.reply;
      probes_ += far_try.attempts;
      ++expected_;
      if (far_reply.outcome != sim::ProbeOutcome::kLost) ++answered_;
      if (far_reply.outcome == sim::ProbeOutcome::kTtlExpired &&
          far_reply.responder == target.far_addr) {
        dest.consecutive_misses = 0;
        write(kSideFar, kFarNoise, target.far_addr, dest, &far_reply);
      } else {
        write(kSideFar, kFarNoise, target.far_addr, dest, nullptr);
        if (far_reply.outcome != sim::ProbeOutcome::kLost) {
          // Wrong responder (or the probe reached the destination outright):
          // the route toward this destination no longer crosses the target
          // link; after repeated misses stop using it (a backup is promoted
          // at the next round, or bdrmap replaces it next cycle).
          if (++dest.consecutive_misses >= config_.visibility_miss_limit) {
            dest.lost_visibility = true;
          }
        }
      }
    }
  }

  if (!vp_up) ++rounds_vp_down_;
  round_window_.emplace_back(static_cast<std::uint32_t>(expected_ - e0),
                             static_cast<std::uint32_t>(answered_ - a0));
  while (round_window_.size() >
         static_cast<std::size_t>(std::max(config_.response_window_rounds, 1))) {
    round_window_.pop_front();
  }
}

}  // namespace manic::tslp
