// The TSLP measurement scheduler (§3.1): for every border link discovered by
// bdrmap it selects up to three destinations whose forward path crosses both
// ends of the link (preferring destinations in the neighbor's own address
// space), probes the near and far interfaces every five minutes with
// TTL-limited ICMP probes, keeps the flow identifier (ICMP checksum)
// constant per destination so ECMP load balancing cannot split the
// near/far pair onto different parallel links, enforces the VP-wide 100 pps
// probing budget, and keeps destinations sticky across probing-set updates
// unless they lost visibility of the link.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "bdrmap/bdrmap.h"
#include "probe/probe.h"
#include "tsdb/tsdb.h"

namespace manic::tslp {

using sim::SimNetwork;
using sim::TimeSec;
using topo::Asn;
using topo::Ipv4Addr;
using topo::VpId;

// tsdb measurement names and tags written by the scheduler.
inline constexpr const char* kMeasurementRtt = "tslp_rtt";   // tags: vp, link, side, dst
inline constexpr const char* kSideNear = "near";
inline constexpr const char* kSideFar = "far";

struct TslpDest {
  Ipv4Addr dst;
  std::uint16_t flow = 0;
  int far_ttl = 0;
  Asn origin = 0;
  int consecutive_misses = 0;  // far probe not answered by the expected addr
  bool lost_visibility = false;
};

struct TslpTarget {
  Ipv4Addr far_addr;   // link identifier (far-side interface)
  Ipv4Addr near_addr;
  Asn neighbor = 0;
  std::vector<TslpDest> dests;    // up to Config::max_dests
  // Spare destinations known to cross the link: when a probed destination
  // loses visibility (route change), a backup is promoted immediately
  // instead of waiting for the next 1-3 day bdrmap cycle — the reactive
  // update the paper lists as future work (§3.2).
  std::vector<TslpDest> backups;
};

class TslpScheduler {
 public:
  struct Config {
    int max_dests = 3;
    int max_backups = 6;
    TimeSec round_interval = 300;  // five minutes
    double pps_budget = 100.0;
    int visibility_miss_limit = 6;  // misses before a destination is replaced
    // ResponseRate() window: one day of five-minute rounds by default, so a
    // long-healed early outage cannot mask a current one.
    int response_window_rounds = 288;
    // Per-probe retry discipline. The default (single attempt) reproduces
    // the historical scheduler exactly; hardened deployments raise
    // max_attempts to ride out transient loss.
    probe::RetryPolicy retry{.max_attempts = 1};
  };

  TslpScheduler(SimNetwork& net, VpId vp, tsdb::Database& db, Config config);
  TslpScheduler(SimNetwork& net, VpId vp, tsdb::Database& db)
      : TslpScheduler(net, vp, db, Config{}) {}

  // Installs / refreshes the probing set from a bdrmap cycle. Destinations
  // already probing a link are retained unless they lost visibility (§3.2's
  // stickiness rule); new destinations fill remaining slots, preferring the
  // neighbor's own address space.
  void UpdateProbingSet(const bdrmap::BdrmapResult& borders);

  // One probing round at time t: near+far probes via every destination of
  // every target, written to the database.
  void RunRound(TimeSec t);

  const std::vector<TslpTarget>& targets() const noexcept { return targets_; }
  // Destinations replaced by backups since construction.
  std::size_t destinations_repaired() const noexcept { return repaired_; }
  std::size_t links_dropped_for_budget() const noexcept {
    return dropped_for_budget_;
  }
  std::uint64_t probes_this_session() const noexcept { return probes_; }
  // Fraction of expected responses received over the last
  // Config::response_window_rounds rounds — a *current* health signal; an
  // outage that healed long ago ages out of the window.
  double ResponseRate() const noexcept {
    std::uint64_t expected = 0;
    std::uint64_t answered = 0;
    for (const auto& [e, a] : round_window_) {
      expected += e;
      answered += a;
    }
    return expected == 0
               ? 0.0
               : static_cast<double>(answered) / static_cast<double>(expected);
  }
  // Fraction of expected responses received since construction (the
  // pre-windowing ResponseRate semantics, kept for session summaries).
  double LifetimeResponseRate() const noexcept {
    return expected_ == 0
               ? 0.0
               : static_cast<double>(answered_) / static_cast<double>(expected_);
  }
  // Rounds skipped because the vantage point was out.
  std::uint64_t rounds_vp_down() const noexcept { return rounds_vp_down_; }

  // Tag helpers shared with the analysis code.
  static tsdb::TagSet Tags(const std::string& vp_name, Ipv4Addr link_far,
                           const char* side);

 private:
  SimNetwork* net_ = nullptr;
  VpId vp_ = 0;
  tsdb::Database* db_ = nullptr;
  Config config_;
  std::string vp_name_;
  probe::Prober prober_;
  std::vector<TslpTarget> targets_;
  std::size_t dropped_for_budget_ = 0;
  std::size_t repaired_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t expected_ = 0;
  std::uint64_t answered_ = 0;
  std::uint64_t rounds_vp_down_ = 0;
  // Per-round (expected, answered), newest last, trimmed to
  // Config::response_window_rounds.
  std::deque<std::pair<std::uint32_t, std::uint32_t>> round_window_;
};

}  // namespace manic::tslp
