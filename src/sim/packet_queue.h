// Event-driven packet-level FIFO queue with a finite buffer: the reference
// model used to validate the closed-form fluid approximation in
// link_model.h, and to demonstrate (tests + micro benchmark) that probe
// packets sampled through a standing queue see the delay plateau + loss
// onset the paper's method keys on.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.h"

namespace manic::sim {

struct PacketQueueConfig {
  double capacity_bps = 10e9;      // link rate
  double packet_bytes = 1500.0;    // background packet size
  double buffer_bytes = 62.5e6;    // => 50 ms drain time at 10 Gbps
  bool poisson_arrivals = true;    // exponential vs deterministic interarrival
};

struct PacketQueueStats {
  std::uint64_t arrivals = 0;
  std::uint64_t drops = 0;
  double mean_queue_delay_ms = 0.0;  // over accepted packets
  double max_queue_delay_ms = 0.0;
  double LossRate() const noexcept {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(drops) /
                               static_cast<double>(arrivals);
  }
};

// Simulates background traffic at `utilization` x capacity for `duration_s`
// seconds and reports queue statistics. Also supports injecting probe
// packets at fixed intervals and reporting their individual delays/drops.
class PacketQueueSim {
 public:
  PacketQueueSim(PacketQueueConfig config, std::uint64_t seed) noexcept
      : config_(config), rng_(seed) {}

  // Runs background-only traffic; returns aggregate stats.
  PacketQueueStats Run(double utilization, double duration_s);

  // Runs background traffic and injects one probe every `probe_interval_s`.
  // Probe delays (ms) for delivered probes are appended to `probe_delays`;
  // dropped probe count returned via `probe_drops`.
  PacketQueueStats RunWithProbes(double utilization, double duration_s,
                                 double probe_interval_s,
                                 std::vector<double>* probe_delays,
                                 std::uint64_t* probe_drops);

 private:
  PacketQueueConfig config_;
  stats::Rng rng_;
};

}  // namespace manic::sim
