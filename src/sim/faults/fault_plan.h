// A deterministic, schedule-driven fault plan: the scriptable input that
// replaces hand-crafted test pathologies. A plan is an ordered list of
// events — link flaps and capacity brownouts, vantage-point outages, ICMP
// blackhole and rate-limit regime changes, route churn, per-VP clock skew,
// and telemetry write drops — each active over a half-open [start_s, end_s)
// interval of simulated time. Plans round-trip through a line-oriented text
// format so scenarios can be committed, diffed, and replayed byte-for-byte:
//
//   # one event per line; '#' starts a comment
//   link_down      link=3 start_s=68400 end_s=72000
//   brownout       link=3 start_s=0 end_s=86400 scale_frac=0.5
//   vp_outage      vp=0 start_s=345600 end_s=864000
//   icmp_blackhole router=5 start_s=0 end_s=86400
//   icmp_ratelimit router=5 start_s=0 end_s=86400 loss_frac=0.5
//   route_churn    at_s=86400
//   clock_skew     vp=0 start_s=0 end_s=86400 skew_s=120
//   tsdb_drop      vp=0 start_s=0 end_s=86400 drop_frac=0.3
//
// FaultInjector (fault_injector.h) turns a plan into the sim::FaultHook the
// network and probing loop consult.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/fault_hook.h"

namespace manic::sim::faults {

using stats::TimeSec;

enum class FaultKind : std::uint8_t {
  kLinkDown,       // link loses every packet over [start, end)
  kLinkBrownout,   // link capacity scaled by magnitude over [start, end)
  kVpOutage,       // vantage point off the air over [start, end)
  kIcmpBlackhole,  // router answers nothing over [start, end)
  kIcmpRateLimit,  // router drops `magnitude` extra replies over [start, end)
  kRouteChurn,     // instantaneous: routing epoch bumps at start
  kClockSkew,      // VP timestamps shifted by `magnitude` s over [start, end)
  kTsdbDrop,       // VP telemetry writes lost w.p. `magnitude` over [start, end)
};

const char* FaultKindName(FaultKind kind) noexcept;

struct FaultEvent {
  TimeSec start_s = 0;  // inclusive
  TimeSec end_s = 0;    // exclusive (== start_s for kRouteChurn)
  // capacity scale / extra loss fraction / skew seconds / drop probability.
  double magnitude = 0.0;
  // Link, VP, or router id, per kind (unused for kRouteChurn).
  std::uint32_t target = 0;
  FaultKind kind = FaultKind::kLinkDown;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultPlan {
 public:
  // ---- builders ------------------------------------------------------------
  FaultPlan& LinkDown(topo::LinkId link, TimeSec start_s, TimeSec end_s);
  // A flap train: `flaps` outages of `down_s` seconds each, the k-th starting
  // at start_s + k * period_s.
  FaultPlan& LinkFlaps(topo::LinkId link, TimeSec start_s, int flaps,
                       TimeSec down_s, TimeSec period_s);
  FaultPlan& LinkBrownout(topo::LinkId link, TimeSec start_s, TimeSec end_s,
                          double capacity_scale_frac);
  FaultPlan& VpOutage(topo::VpId vp, TimeSec start_s, TimeSec end_s);
  FaultPlan& IcmpBlackhole(topo::RouterId router, TimeSec start_s,
                           TimeSec end_s);
  FaultPlan& IcmpRateLimit(topo::RouterId router, TimeSec start_s,
                           TimeSec end_s, double extra_loss_frac);
  FaultPlan& RouteChurn(TimeSec at_s);
  FaultPlan& ClockSkew(topo::VpId vp, TimeSec start_s, TimeSec end_s,
                       TimeSec skew_s);
  FaultPlan& TsdbDrop(topo::VpId vp, TimeSec start_s, TimeSec end_s,
                      double drop_frac);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

  // ---- text round-trip -----------------------------------------------------
  // One event per line in the header's format; Parse(Serialize()) == *this.
  std::string Serialize() const;
  static std::optional<FaultPlan> Parse(std::istream& is, std::string* error);
  static std::optional<FaultPlan> Parse(const std::string& text,
                                        std::string* error);
  static std::optional<FaultPlan> ParseFile(const std::string& path,
                                            std::string* error);

  // Structural sanity warnings (empty intervals, out-of-range fractions,
  // clock skews at or above the 300 s TSLP round that would break series
  // time order). Parsing already rejects malformed lines; these are the
  // "plan is well-formed but probably not what you meant" class.
  std::vector<std::string> Validate() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace manic::sim::faults
