#include "sim/faults/fault_plan.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace manic::sim::faults {

namespace {

// The keyword each kind serializes under, and which numeric field names it
// expects. `magnitude_key` is null for kinds without a magnitude.
struct KindSpec {
  FaultKind kind = FaultKind::kLinkDown;
  const char* name = nullptr;
  const char* target_key = nullptr;     // null: no target (route_churn)
  const char* magnitude_key = nullptr;  // null: no magnitude
};

constexpr KindSpec kKinds[] = {
    {FaultKind::kLinkDown, "link_down", "link", nullptr},
    {FaultKind::kLinkBrownout, "brownout", "link", "scale_frac"},
    {FaultKind::kVpOutage, "vp_outage", "vp", nullptr},
    {FaultKind::kIcmpBlackhole, "icmp_blackhole", "router", nullptr},
    {FaultKind::kIcmpRateLimit, "icmp_ratelimit", "router", "loss_frac"},
    {FaultKind::kRouteChurn, "route_churn", nullptr, nullptr},
    {FaultKind::kClockSkew, "clock_skew", "vp", "skew_s"},
    {FaultKind::kTsdbDrop, "tsdb_drop", "vp", "drop_frac"},
};

const KindSpec* SpecOf(FaultKind kind) {
  for (const KindSpec& s : kKinds) {
    if (s.kind == kind) return &s;
  }
  return nullptr;
}

const KindSpec* SpecOf(std::string_view name) {
  for (const KindSpec& s : kKinds) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

bool ParseDouble(std::string_view text, double* out) {
  // std::from_chars<double> is missing from some libstdc++ configurations;
  // strtod via a bounded copy keeps the parser portable.
  std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) noexcept {
  const KindSpec* spec = SpecOf(kind);
  return spec != nullptr ? spec->name : "?";
}

FaultPlan& FaultPlan::LinkDown(topo::LinkId link, TimeSec start_s,
                               TimeSec end_s) {
  events_.push_back({start_s, end_s, 0.0, link, FaultKind::kLinkDown});
  return *this;
}

FaultPlan& FaultPlan::LinkFlaps(topo::LinkId link, TimeSec start_s, int flaps,
                                TimeSec down_s, TimeSec period_s) {
  for (int k = 0; k < flaps; ++k) {
    const TimeSec t0 = start_s + static_cast<TimeSec>(k) * period_s;
    LinkDown(link, t0, t0 + down_s);
  }
  return *this;
}

FaultPlan& FaultPlan::LinkBrownout(topo::LinkId link, TimeSec start_s,
                                   TimeSec end_s, double capacity_scale_frac) {
  events_.push_back(
      {start_s, end_s, capacity_scale_frac, link, FaultKind::kLinkBrownout});
  return *this;
}

FaultPlan& FaultPlan::VpOutage(topo::VpId vp, TimeSec start_s, TimeSec end_s) {
  events_.push_back({start_s, end_s, 0.0, vp, FaultKind::kVpOutage});
  return *this;
}

FaultPlan& FaultPlan::IcmpBlackhole(topo::RouterId router, TimeSec start_s,
                                    TimeSec end_s) {
  events_.push_back({start_s, end_s, 0.0, router, FaultKind::kIcmpBlackhole});
  return *this;
}

FaultPlan& FaultPlan::IcmpRateLimit(topo::RouterId router, TimeSec start_s,
                                    TimeSec end_s, double extra_loss_frac) {
  events_.push_back(
      {start_s, end_s, extra_loss_frac, router, FaultKind::kIcmpRateLimit});
  return *this;
}

FaultPlan& FaultPlan::RouteChurn(TimeSec at_s) {
  events_.push_back({at_s, at_s, 0.0, 0, FaultKind::kRouteChurn});
  return *this;
}

FaultPlan& FaultPlan::ClockSkew(topo::VpId vp, TimeSec start_s, TimeSec end_s,
                                TimeSec skew_s) {
  events_.push_back({start_s, end_s, static_cast<double>(skew_s), vp,
                     FaultKind::kClockSkew});
  return *this;
}

FaultPlan& FaultPlan::TsdbDrop(topo::VpId vp, TimeSec start_s, TimeSec end_s,
                               double drop_frac) {
  events_.push_back({start_s, end_s, drop_frac, vp, FaultKind::kTsdbDrop});
  return *this;
}

std::string FaultPlan::Serialize() const {
  std::ostringstream out;
  out << "# manic fault plan v1\n";
  for (const FaultEvent& e : events_) {
    const KindSpec* spec = SpecOf(e.kind);
    out << spec->name;
    if (spec->target_key != nullptr) {
      out << ' ' << spec->target_key << '=' << e.target;
    }
    if (e.kind == FaultKind::kRouteChurn) {
      out << " at_s=" << e.start_s;
    } else {
      out << " start_s=" << e.start_s << " end_s=" << e.end_s;
    }
    if (spec->magnitude_key != nullptr) {
      if (e.kind == FaultKind::kClockSkew) {
        out << ' ' << spec->magnitude_key << '='
            << static_cast<TimeSec>(e.magnitude);
      } else {
        std::ostringstream mag;
        mag.precision(17);
        mag << e.magnitude;
        out << ' ' << spec->magnitude_key << '=' << mag.str();
      }
    }
    out << '\n';
  }
  return out.str();
}

std::optional<FaultPlan> FaultPlan::Parse(std::istream& is,
                                          std::string* error) {
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "fault plan line " + std::to_string(lineno) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word)) continue;
    const KindSpec* spec = SpecOf(std::string_view{word});
    if (spec == nullptr) return fail("unknown fault kind '" + word + "'");

    FaultEvent e;
    e.kind = spec->kind;
    bool have_target = false, have_start = false, have_end = false,
         have_magnitude = false;
    std::string kv;
    while (fields >> kv) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= kv.size()) {
        return fail("expected key=value, got '" + kv + "'");
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      double num = 0.0;
      if (!ParseDouble(value, &num)) {
        return fail("bad number '" + value + "' for '" + key + "'");
      }
      if (spec->target_key != nullptr && key == spec->target_key) {
        if (num < 0 || num != std::floor(num)) {
          return fail("'" + key + "' must be a non-negative integer");
        }
        e.target = static_cast<std::uint32_t>(num);
        have_target = true;
      } else if (e.kind == FaultKind::kRouteChurn && key == "at_s") {
        e.start_s = e.end_s = static_cast<TimeSec>(num);
        have_start = have_end = true;
      } else if (key == "start_s") {
        e.start_s = static_cast<TimeSec>(num);
        have_start = true;
      } else if (key == "end_s") {
        e.end_s = static_cast<TimeSec>(num);
        have_end = true;
      } else if (spec->magnitude_key != nullptr &&
                 key == spec->magnitude_key) {
        e.magnitude = num;
        have_magnitude = true;
      } else {
        return fail("unknown key '" + key + "' for " + spec->name);
      }
    }
    if (spec->target_key != nullptr && !have_target) {
      return fail(std::string("missing '") + spec->target_key + "'");
    }
    if (!have_start || !have_end) {
      return fail(e.kind == FaultKind::kRouteChurn ? "missing 'at_s'"
                                                   : "missing start_s/end_s");
    }
    if (spec->magnitude_key != nullptr && !have_magnitude) {
      return fail(std::string("missing '") + spec->magnitude_key + "'");
    }
    plan.events_.push_back(e);
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::Parse(const std::string& text,
                                          std::string* error) {
  std::istringstream is(text);
  return Parse(is, error);
}

std::optional<FaultPlan> FaultPlan::ParseFile(const std::string& path,
                                              std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open fault plan '" + path + "'";
    return std::nullopt;
  }
  return Parse(is, error);
}

std::vector<std::string> FaultPlan::Validate() const {
  std::vector<std::string> warnings;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const std::string where =
        "event " + std::to_string(i) + " (" + FaultKindName(e.kind) + ")";
    if (e.kind != FaultKind::kRouteChurn && e.end_s <= e.start_s) {
      warnings.push_back(where + ": empty interval [start_s, end_s)");
    }
    switch (e.kind) {
      case FaultKind::kLinkBrownout:
        if (e.magnitude <= 0.0 || e.magnitude > 1.0) {
          warnings.push_back(where + ": scale_frac outside (0, 1]");
        }
        break;
      case FaultKind::kIcmpRateLimit:
      case FaultKind::kTsdbDrop:
        if (e.magnitude < 0.0 || e.magnitude > 1.0) {
          warnings.push_back(where + ": fraction outside [0, 1]");
        }
        break;
      case FaultKind::kClockSkew:
        // 300 s is the TSLP round interval: a larger skew makes recorded
        // timestamps non-monotonic when the skew regime ends.
        if (std::fabs(e.magnitude) >= 300.0) {
          warnings.push_back(where +
                             ": |skew_s| >= 300 breaks series time order");
        }
        break;
      default:
        break;
    }
  }
  return warnings;
}

}  // namespace manic::sim::faults
