#include "sim/faults/fault_injector.h"

#include <algorithm>

#include "stats/rng.h"

namespace manic::sim::faults {

FaultInjector::FaultInjector(FaultPlan plan, runtime::SeedTree seed)
    : plan_(std::move(plan)), drop_seed_(seed.Child("tsdb_drop").seed()) {
  for (const FaultEvent& e : plan_.events()) {
    const Interval iv{e.start_s, e.end_s, e.magnitude};
    switch (e.kind) {
      case FaultKind::kLinkDown:
        link_down_[e.target].push_back(iv);
        break;
      case FaultKind::kLinkBrownout:
        brownout_[e.target].push_back(iv);
        break;
      case FaultKind::kVpOutage:
        vp_outage_[e.target].push_back(iv);
        break;
      case FaultKind::kIcmpBlackhole:
        icmp_blackhole_[e.target].push_back(iv);
        break;
      case FaultKind::kIcmpRateLimit:
        icmp_ratelimit_[e.target].push_back(iv);
        break;
      case FaultKind::kClockSkew:
        clock_skew_[e.target].push_back(iv);
        break;
      case FaultKind::kTsdbDrop:
        tsdb_drop_[e.target].push_back(iv);
        break;
      case FaultKind::kRouteChurn:
        churn_times_.push_back(e.start_s);
        break;
    }
  }
  std::sort(churn_times_.begin(), churn_times_.end());
}

const std::vector<FaultInjector::Interval>* FaultInjector::Find(
    const TargetIndex& index, std::uint32_t target) {
  const auto it = index.find(target);
  return it != index.end() ? &it->second : nullptr;
}

FaultHook::LinkState FaultInjector::LinkAt(topo::LinkId link,
                                           stats::TimeSec t) const {
  LinkState state;
  if (const auto* downs = Find(link_down_, link)) {
    for (const Interval& iv : *downs) {
      if (iv.Active(t)) {
        state.up = false;
        break;
      }
    }
  }
  if (const auto* browns = Find(brownout_, link)) {
    // Overlapping brownouts compound: each scales what the previous left.
    for (const Interval& iv : *browns) {
      if (iv.Active(t)) state.capacity_scale_frac *= iv.magnitude;
    }
  }
  return state;
}

FaultHook::IcmpState FaultInjector::IcmpAt(topo::RouterId router,
                                           stats::TimeSec t) const {
  IcmpState state;
  if (const auto* holes = Find(icmp_blackhole_, router)) {
    for (const Interval& iv : *holes) {
      if (iv.Active(t)) {
        state.blackholed = true;
        return state;
      }
    }
  }
  if (const auto* limits = Find(icmp_ratelimit_, router)) {
    // Independent rate-limit regimes compose as survival probabilities.
    double survive = 1.0;
    for (const Interval& iv : *limits) {
      if (iv.Active(t)) survive *= 1.0 - iv.magnitude;
    }
    state.extra_loss_frac = 1.0 - survive;
  }
  return state;
}

bool FaultInjector::VpUpAt(topo::VpId vp, stats::TimeSec t) const {
  if (const auto* outs = Find(vp_outage_, vp)) {
    for (const Interval& iv : *outs) {
      if (iv.Active(t)) return false;
    }
  }
  return true;
}

stats::TimeSec FaultInjector::ClockSkewAt(topo::VpId vp,
                                          stats::TimeSec t) const {
  stats::TimeSec skew = 0;
  if (const auto* skews = Find(clock_skew_, vp)) {
    for (const Interval& iv : *skews) {
      if (iv.Active(t)) skew += static_cast<stats::TimeSec>(iv.magnitude);
    }
  }
  return skew;
}

bool FaultInjector::DropTsdbWriteAt(topo::VpId vp, stats::TimeSec t,
                                    std::uint64_t noise) const {
  const auto* drops = Find(tsdb_drop_, vp);
  if (drops == nullptr) return false;
  double survive = 1.0;
  for (const Interval& iv : *drops) {
    if (iv.Active(t)) survive *= 1.0 - iv.magnitude;
  }
  if (survive >= 1.0) return false;
  const double u = stats::Rng::HashToUnit(
      drop_seed_, stats::Rng::HashMix(vp, static_cast<std::uint64_t>(t)),
      noise);
  return u < 1.0 - survive;
}

std::uint32_t FaultInjector::RouteEpochAt(stats::TimeSec t) const {
  const auto it =
      std::upper_bound(churn_times_.begin(), churn_times_.end(), t);
  return static_cast<std::uint32_t>(it - churn_times_.begin());
}

}  // namespace manic::sim::faults
