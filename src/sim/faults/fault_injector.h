// FaultInjector turns a FaultPlan into the sim::FaultHook that SimNetwork
// and the probing loop consult. Every query is a pure function of
// (plan, seed, arguments): the only randomness — per-write telemetry drops —
// is derived from a SeedTree child hashed with the (vp, t, noise) triple, so
// a faulted run replays bit-identically at any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/seed_tree.h"
#include "sim/fault_hook.h"
#include "sim/faults/fault_plan.h"

namespace manic::sim::faults {

class FaultInjector final : public FaultHook {
 public:
  // `seed` should be a dedicated subtree, e.g.
  // runtime::SeedTree(options.seed).Child("faults"); it only feeds the
  // probabilistic tsdb-drop query, so two injectors with the same plan and
  // seed are interchangeable.
  FaultInjector(FaultPlan plan, runtime::SeedTree seed);

  const FaultPlan& plan() const noexcept { return plan_; }

  // FaultHook:
  LinkState LinkAt(topo::LinkId link, stats::TimeSec t) const override;
  IcmpState IcmpAt(topo::RouterId router, stats::TimeSec t) const override;
  bool VpUpAt(topo::VpId vp, stats::TimeSec t) const override;
  stats::TimeSec ClockSkewAt(topo::VpId vp, stats::TimeSec t) const override;
  bool DropTsdbWriteAt(topo::VpId vp, stats::TimeSec t,
                       std::uint64_t noise) const override;
  std::uint32_t RouteEpochAt(stats::TimeSec t) const override;

 private:
  struct Interval {
    stats::TimeSec start_s = 0;
    stats::TimeSec end_s = 0;
    double magnitude = 0.0;

    bool Active(stats::TimeSec t) const noexcept {
      return t >= start_s && t < end_s;
    }
  };
  // Per-target interval lists, one map per fault kind, built once at
  // construction so the hot-path queries never touch the flat event list.
  using TargetIndex = std::map<std::uint32_t, std::vector<Interval>>;

  static const std::vector<Interval>* Find(const TargetIndex& index,
                                           std::uint32_t target);

  FaultPlan plan_;
  std::uint64_t drop_seed_ = 0;
  TargetIndex link_down_;
  TargetIndex brownout_;
  TargetIndex vp_outage_;
  TargetIndex icmp_blackhole_;
  TargetIndex icmp_ratelimit_;
  TargetIndex clock_skew_;
  TargetIndex tsdb_drop_;
  std::vector<stats::TimeSec> churn_times_;  // sorted
};

}  // namespace manic::sim::faults
