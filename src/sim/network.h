// SimNetwork: the live-Internet substitute. It binds together the static
// topology, BGP-style routing, per-link directional demand models and queue
// models, and ICMP response behaviour, and exposes exactly the operations a
// measurement host has: send a (TTL-limited) probe and observe what comes
// back. Congestion is directional — in the broadband scenarios the
// content->access direction saturates, so a TSLP probe crosses the quiet
// upstream direction and its ICMP *reply* rides the congested downstream
// queue, which is how the real method observes interdomain congestion.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/demand.h"
#include "sim/fault_hook.h"
#include "sim/link_model.h"
#include "sim/routing.h"
#include "stats/rng.h"
#include "topo/topology.h"

namespace manic::sim {

using topo::Asn;
using topo::IfaceId;
using topo::Ipv4Addr;
using topo::LinkId;
using topo::RouterId;
using topo::VpId;

// Direction along a link: kAtoB means router_a -> router_b.
enum class Direction : std::uint8_t { kAtoB = 0, kBtoA = 1 };

constexpr Direction Opposite(Direction d) noexcept {
  return d == Direction::kAtoB ? Direction::kBtoA : Direction::kAtoB;
}

// Paris-traceroute-style flow identifier: TSLP keeps the ICMP checksum
// constant across near/far probes so ECMP hashes them onto the same path.
struct FlowId {
  std::uint16_t value = 0;
};

struct Hop {
  RouterId router = topo::kInvalidId;
  IfaceId ingress_iface = topo::kInvalidId;  // interface the packet arrived on
  LinkId via_link = topo::kInvalidId;        // link crossed to reach it
  Direction via_dir = Direction::kAtoB;
};

struct ForwardPath {
  std::vector<Hop> hops;  // hops[k] is where a probe with TTL k+1 expires
  // Final delivery to the destination host beyond the last hop: a real
  // uplink crossing when dst is a VP host, otherwise a fixed stub delay.
  double host_delay_ms = 0.5;
  Ipv4Addr dst;
  Asn dst_as = 0;
  LinkId host_link = topo::kInvalidId;
  Direction host_dir = Direction::kAtoB;
  bool reached = false;  // destination host reachable past the last hop
};

enum class ProbeOutcome : std::uint8_t { kTtlExpired, kEchoReply, kLost };

struct ProbeReply {
  ProbeOutcome outcome = ProbeOutcome::kLost;
  Ipv4Addr responder;
  double rtt_ms = 0.0;
  std::uint32_t ip_id = 0;  // responder's IP-ID counter value (for Ally)
  int hop_index = -1;       // index into the forward path (TTL-1)
};

// Aggregate path quality used by the throughput / streaming models.
struct PathMetrics {
  double rtt_ms = 0.0;         // base + queueing, both directions
  double loss_up = 0.0;        // VP -> destination direction
  double loss_down = 0.0;      // destination -> VP direction
  double min_capacity_gbps = 0.0;
  double worst_down_utilization = 0.0;
  LinkId worst_down_link = topo::kInvalidId;
  bool reachable = false;
};

class SimNetwork {
 public:
  SimNetwork(topo::Topology& topo, std::uint64_t seed);

  topo::Topology& topology() noexcept { return *topo_; }
  const topo::Topology& topology() const noexcept { return *topo_; }
  BgpRouting& routing() noexcept { return routing_; }

  // ---- dynamics configuration --------------------------------------------
  void SetDemand(LinkId link, Direction dir, LinkDemand demand);
  LinkDemand& DemandFor(LinkId link, Direction dir);
  void SetQueueModel(LinkId link, LinkQueueModel model);

  // Forces paths that *start* at `from_router` toward `dst_as` to exit via
  // `via_link` at their first AS transition: models an asymmetric return
  // path for ICMP replies / reverse data (§7, Table 2's Link 2).
  void SetReturnOverride(RouterId from_router, Asn dst_as, LinkId via_link);

  // Invalidate cached paths after topology or routing changes.
  void InvalidatePaths();

  // ---- fault injection -----------------------------------------------------
  // Installs the fault schedule every subsequent operation consults (not
  // owned; pass nullptr to clear). A null hook leaves every code path — and
  // every random draw — exactly as in an unfaulted run.
  void SetFaultHook(const FaultHook* hook) { fault_hook_ = hook; }
  const FaultHook* fault_hook() const noexcept { return fault_hook_; }

  // ---- path computation ----------------------------------------------------
  // Path from a router toward an address (cached; ECMP depends on flow).
  // `route_epoch` re-seeds ECMP tie-breaking (fault-driven route churn);
  // epoch 0 reproduces the historical selection exactly.
  const ForwardPath& PathFromRouter(RouterId start, Ipv4Addr dst, FlowId flow,
                                    std::uint32_t route_epoch = 0);
  // Path from a VP's host (starts at its first-hop router).
  const ForwardPath& PathFromVp(VpId vp, Ipv4Addr dst, FlowId flow,
                                std::uint32_t route_epoch = 0);

  // ---- probing -------------------------------------------------------------
  // Sends one TTL-limited ICMP probe from `vp` toward `dst` at sim time `t`.
  ProbeReply Probe(VpId vp, Ipv4Addr dst, int ttl, FlowId flow, TimeSec t);

  // Echo probe all the way to the destination host.
  ProbeReply Ping(VpId vp, Ipv4Addr dst, FlowId flow, TimeSec t);

  // TTL-limited probe with the IP Record Route option (§7's proposed
  // asymmetric-return detector): when the probe elicits a reply, up to
  // `kRecordRouteSlots` egress interface addresses of the routers the REPLY
  // traversed are recorded, letting a measurer check whether the return path
  // crossed the targeted link. Real RR is limited to 9 slots and often
  // ignored; routers with `responds == false` skip recording.
  static constexpr std::size_t kRecordRouteSlots = 9;
  struct RecordRouteReply {
    ProbeReply reply;
    std::vector<Ipv4Addr> reverse_route;  // egress ifaces, VP-ward order
  };
  RecordRouteReply ProbeRecordRoute(VpId vp, Ipv4Addr dst, int ttl,
                                    FlowId flow, TimeSec t);

  // Deterministic expectation of a TTL-limited probe at time t: mean RTT
  // (no jitter/slow-path) and end-to-end loss probability of probe plus
  // reply. Used by the high-rate loss module to aggregate a 5-minute
  // window (300 probes) as one Binomial draw instead of 300 walks; tests
  // verify it matches per-probe simulation.
  struct ProbeExpectation {
    double rtt_ms = 0.0;
    double loss_prob = 1.0;
    Ipv4Addr responder;
    bool reachable = false;
  };
  // include_queues=false yields the congestion-free baseline RTT (pure
  // propagation + ICMP costs), used by the fast series synthesizer.
  ProbeExpectation ExpectProbe(VpId vp, Ipv4Addr dst, int ttl, FlowId flow,
                               TimeSec t, bool include_queues = true);

  // Noisy queueing delay / probe-drop probability of one link direction at
  // time t (0 when no demand model is attached).
  double ObservedQueueDelayMs(LinkId link, Direction dir, TimeSec t) const;
  double ObservedLossProb(LinkId link, Direction dir, TimeSec t) const;

  // ---- bulk-transfer view ---------------------------------------------------
  // Path quality between a VP and a destination at time t (for NDT/YouTube).
  PathMetrics MetricsFor(VpId vp, Ipv4Addr dst, FlowId flow, TimeSec t);

  // ---- ground truth ---------------------------------------------------------
  // Noise-free utilization of a link direction at time t (0 if no demand
  // model is attached).
  double MeanUtilization(LinkId link, Direction dir, TimeSec t) const;
  // Fraction of epoch-day `day` during which the mean utilization of the
  // given direction is >= threshold (sampled at 1-minute resolution).
  double TrueCongestedFraction(LinkId link, Direction dir, std::int64_t day,
                               double threshold = 1.0) const;
  // True where any minute of the day saturates.
  bool TrulyCongested(LinkId link, Direction dir, std::int64_t day) const {
    return TrueCongestedFraction(link, dir, day) > 0.0;
  }

  // Local UTC offset used by a link's demand evaluation (its near router's).
  int LinkUtcOffset(LinkId link) const;

  std::uint64_t ProbesSent() const noexcept { return probes_sent_; }

 private:
  struct LinkDynamics {
    std::optional<LinkDemand> demand[2];
    LinkQueueModel queue;
    int utc_offset_hours = 0;
  };

  struct SegmentCost {
    double delay_ms = 0.0;
    bool lost = false;
  };

  // Delay and loss of crossing `link` in `dir` at time t; stochastic.
  SegmentCost CrossLink(LinkId link, Direction dir, TimeSec t,
                        std::uint64_t noise_key);

  // Accumulated one-way cost over `path.hops[0..hop_count)`.
  SegmentCost AccumulatePath(const ForwardPath& path, std::size_t hop_count,
                             TimeSec t, std::uint64_t noise_key);

  ForwardPath ComputePath(RouterId start, Ipv4Addr dst, FlowId flow,
                          std::uint32_t route_epoch) const;
  LinkId ChooseEgressLink(RouterId cur, Asn cur_as, Asn next_as, Ipv4Addr dst,
                          FlowId flow, bool first_transition,
                          RouterId path_start, std::uint32_t route_epoch) const;

  // Routing epoch the installed fault schedule prescribes at time t.
  std::uint32_t RouteEpochAt(TimeSec t) const {
    return fault_hook_ != nullptr ? fault_hook_->RouteEpochAt(t) : 0;
  }
  // Demand-model utilization adjusted for fault state (brownouts inflate it;
  // a down link carries nothing).
  double FaultedUtilization(const LinkDemand& demand, const LinkDynamics& dyn,
                            LinkId link, TimeSec t, bool* up) const;

  topo::Topology* topo_ = nullptr;
  BgpRouting routing_;
  mutable stats::Rng rng_;
  std::vector<LinkDynamics> dynamics_;
  std::map<std::pair<RouterId, Asn>, LinkId> return_overrides_;
  // Keyed (router, dst, route_epoch << 16 | flow): churn epochs get their own
  // cached paths, and epoch 0 keys collapse to the historical layout.
  std::map<std::tuple<RouterId, std::uint32_t, std::uint32_t>, ForwardPath>
      path_cache_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t seed_ = 0;
  const FaultHook* fault_hook_ = nullptr;
};

}  // namespace manic::sim
