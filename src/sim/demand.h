// Traffic demand on interdomain links: a diurnal shape scaled by a per-link
// schedule of "congestion regimes". A regime says "between study days
// [start, end) this link's peak-hour utilization target is X" — X > 1 means
// demand exceeds capacity at the daily peak, producing the standing queue
// and loss the TSLP method detects. Regime schedules are how scenarios
// script the rise/dissipation patterns of §6.2 (e.g. Comcast-Google
// congestion dissipating in July 2017).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/calendar.h"

namespace manic::sim {

// Simulated time flows through every sim interface; re-exported here so the
// measurement stack can keep writing sim::TimeSec.
using stats::TimeSec;

// Smooth diurnal shape in (0, 1]: ~base overnight, 1.0 at the evening peak.
struct DiurnalShape {
  double trough = 0.45;        // overnight fraction of peak demand
  double peak_hour = 20.5;     // local-time center of the evening peak
  double peak_width_h = 2.6;   // Gaussian sigma (hours)
  double morning_bump = 0.12;  // small secondary bump near 10:00
  double weekend_peak_shift_h = -0.7;  // weekend peak slightly earlier
  double weekend_scale = 0.97;         // weekend amplitude factor

  // Shape value for a local fractional hour; wraps around midnight.
  double At(double local_hour, bool weekend) const noexcept;
};

// One scheduled demand regime for a link.
struct DemandRegime {
  std::int64_t start_day = 0;  // inclusive, epoch days
  std::int64_t end_day = 0;    // exclusive
  double peak_utilization = 0.6;  // demand/capacity at the diurnal peak
  // Optional linear ramp: utilization target interpolates from
  // `peak_utilization` at start_day to `peak_utilization_end` at end_day.
  double peak_utilization_end = -1.0;  // <0 disables the ramp
};

// Demand model for one link.
struct LinkDemand {
  DiurnalShape shape;
  double default_peak_utilization = 0.6;  // outside any regime
  std::vector<DemandRegime> regimes;      // evaluated in order; last match wins
  double noise_sigma = 0.03;              // multiplicative lognormal-ish noise
  std::uint64_t noise_seed = 0;           // per-link noise stream

  // Peak-utilization target effective on `day` (no noise).
  double PeakTarget(std::int64_t day) const noexcept;

  // Deterministic (noise-free) utilization at time t.
  double MeanUtilization(TimeSec t, int utc_offset_hours) const noexcept;

  // Utilization with reproducible per-5-minute noise.
  double Utilization(TimeSec t, int utc_offset_hours) const noexcept;
};

}  // namespace manic::sim
