#include "sim/routing.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

namespace manic::sim {

using topo::Relationship;

void BgpRouting::Compute(Asn origin, OriginTable& table) const {
  const auto& rel = topo_->relationships;

  // Phase 1 — customer routes: propagate from the origin upward along
  // customer->provider edges (BFS, so lengths are minimal).
  std::map<Asn, AsRouteEntry>& e = table.entries;
  e[origin] = {RouteType::kOrigin, 0, origin};
  std::deque<Asn> frontier{origin};
  while (!frontier.empty()) {
    const Asn cur = frontier.front();
    frontier.pop_front();
    const int next_len = e[cur].length + 1;
    for (const Asn provider : rel.Providers(cur)) {
      auto it = e.find(provider);
      const bool better =
          it == e.end() ||
          (it->second.type == RouteType::kCustomer &&
           (next_len < it->second.length ||
            (next_len == it->second.length && cur < it->second.next_hop)));
      if (it == e.end()) {
        e[provider] = {RouteType::kCustomer, next_len, cur};
        frontier.push_back(provider);
      } else if (better && it->second.type == RouteType::kCustomer) {
        // Equal-or-better length found later can only happen on ties because
        // BFS visits in length order; update the tie-break only.
        if (next_len == it->second.length && cur < it->second.next_hop) {
          it->second.next_hop = cur;
        }
      }
    }
  }

  // Phase 2 — peer routes: one peer hop from any AS holding a
  // customer/origin route.
  std::vector<std::pair<Asn, AsRouteEntry>> peer_routes;
  for (const auto& [asn, entry] : e) {
    if (entry.type != RouteType::kOrigin && entry.type != RouteType::kCustomer) {
      continue;
    }
    for (const Asn peer : rel.Peers(asn)) {
      if (e.contains(peer)) continue;  // customer route wins at `peer`
      peer_routes.push_back({peer, {RouteType::kPeer, entry.length + 1, asn}});
    }
  }
  for (auto& [asn, entry] : peer_routes) {
    const auto it = e.find(asn);
    if (it == e.end() || (it->second.type == RouteType::kPeer &&
                          (entry.length < it->second.length ||
                           (entry.length == it->second.length &&
                            entry.next_hop < it->second.next_hop)))) {
      e[asn] = entry;
    }
  }

  // Phase 3 — provider routes: Dijkstra descending provider->customer edges
  // from every AS that already holds a route; an AS exports its chosen route
  // (of any type) to its customers.
  using Item = std::pair<int, Asn>;  // (length at the customer, customer)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::map<Asn, AsRouteEntry> down;
  auto relax = [&](Asn from, int from_len) {
    for (const Asn customer : rel.Customers(from)) {
      if (e.contains(customer)) continue;  // better class of route exists
      const int len = from_len + 1;
      const auto it = down.find(customer);
      if (it == down.end() || len < it->second.length ||
          (len == it->second.length && from < it->second.next_hop)) {
        down[customer] = {RouteType::kProvider, len, from};
        heap.push({len, customer});
      }
    }
  };
  for (const auto& [asn, entry] : e) relax(asn, entry.length);
  while (!heap.empty()) {
    const auto [len, asn] = heap.top();
    heap.pop();
    const auto it = down.find(asn);
    if (it == down.end() || it->second.length != len) continue;
    relax(asn, len);
  }
  for (const auto& [asn, entry] : down) e[asn] = entry;
}

const BgpRouting::OriginTable& BgpRouting::TableFor(Asn origin) const {
  auto it = per_origin_.find(origin);
  if (it == per_origin_.end()) {
    it = per_origin_.emplace(origin, OriginTable{}).first;
    Compute(origin, it->second);
  }
  return it->second;
}

AsRouteEntry BgpRouting::Route(Asn src, Asn origin) const {
  const OriginTable& table = TableFor(origin);
  const auto it = table.entries.find(src);
  return it == table.entries.end() ? AsRouteEntry{} : it->second;
}

std::vector<Asn> BgpRouting::AsPath(Asn src, Asn origin) const {
  std::vector<Asn> path;
  const OriginTable& table = TableFor(origin);
  Asn cur = src;
  for (int guard = 0; guard < 64; ++guard) {
    const auto it = table.entries.find(cur);
    if (it == table.entries.end()) return {};
    path.push_back(cur);
    if (it->second.type == RouteType::kOrigin) return path;
    cur = it->second.next_hop;
  }
  return {};  // should not happen (loop guard)
}

std::optional<std::vector<RouterId>> BgpRouting::IntraPath(RouterId from,
                                                           RouterId to) const {
  if (from == to) return std::vector<RouterId>{from};
  const Asn asn = topo_->router(from).owner;
  if (topo_->router(to).owner != asn) return std::nullopt;
  // BFS over intra-AS links.
  std::map<RouterId, RouterId> parent;
  std::deque<RouterId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const RouterId cur = frontier.front();
    frontier.pop_front();
    for (const LinkId lid : topo_->LinksOf(cur, topo::LinkKind::kIntra)) {
      const RouterId next = topo_->PeerRouter(topo_->link(lid), cur);
      if (next == topo::kInvalidId || parent.contains(next)) continue;
      parent[next] = cur;
      if (next == to) {
        std::vector<RouterId> path{to};
        RouterId walk = to;
        while (walk != from) {
          walk = parent[walk];
          path.push_back(walk);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

int BgpRouting::IntraDistance(RouterId from, RouterId to) const {
  const auto path = IntraPath(from, to);
  if (!path) return std::numeric_limits<int>::max() / 4;
  return static_cast<int>(path->size()) - 1;
}

}  // namespace manic::sim
