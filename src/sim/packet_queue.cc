#include "sim/packet_queue.h"

#include <algorithm>

namespace manic::sim {

namespace {

struct QueueCore {
  double backlog_bytes = 0.0;  // bytes queued (excluding in-service fraction)
  double last_time = 0.0;

  // Drains the queue up to `now` at `capacity_bps`.
  void Advance(double now, double capacity_bps) noexcept {
    const double drained = (now - last_time) * capacity_bps / 8.0;
    backlog_bytes = std::max(0.0, backlog_bytes - drained);
    last_time = now;
  }
};

}  // namespace

PacketQueueStats PacketQueueSim::Run(double utilization, double duration_s) {
  std::vector<double> unused_delays;
  std::uint64_t unused_drops = 0;
  return RunWithProbes(utilization, duration_s, 0.0, &unused_delays,
                       &unused_drops);
}

PacketQueueStats PacketQueueSim::RunWithProbes(double utilization,
                                               double duration_s,
                                               double probe_interval_s,
                                               std::vector<double>* probe_delays,
                                               std::uint64_t* probe_drops) {
  PacketQueueStats stats;
  *probe_drops = 0;
  QueueCore queue;
  const double arrival_rate_pps =
      utilization * config_.capacity_bps / (8.0 * config_.packet_bytes);
  if (arrival_rate_pps <= 0.0) return stats;
  const double mean_gap = 1.0 / arrival_rate_pps;

  double t = 0.0;
  double next_probe = probe_interval_s > 0.0 ? probe_interval_s : 2.0 * duration_s;
  double delay_sum = 0.0;
  std::uint64_t delay_count = 0;

  while (t < duration_s) {
    const double gap =
        config_.poisson_arrivals ? rng_.Exponential(mean_gap) : mean_gap;
    t += gap;
    if (t >= duration_s) break;

    // Probe injections due before this background arrival. Admission is
    // slot-based (a full queue rejects any arrival, as in fixed-slot router
    // buffers), so small probes are tail-dropped at saturation like MTU
    // packets even though they occupy few bytes once admitted.
    while (next_probe <= t && next_probe < duration_s) {
      queue.Advance(next_probe, config_.capacity_bps);
      const double probe_bytes = 64.0;
      if (queue.backlog_bytes + config_.packet_bytes > config_.buffer_bytes) {
        ++*probe_drops;
      } else {
        const double delay_ms =
            queue.backlog_bytes * 8.0 / config_.capacity_bps * 1e3;
        probe_delays->push_back(delay_ms);
        queue.backlog_bytes += probe_bytes;
      }
      next_probe += probe_interval_s;
    }

    queue.Advance(t, config_.capacity_bps);
    ++stats.arrivals;
    if (queue.backlog_bytes + config_.packet_bytes > config_.buffer_bytes) {
      ++stats.drops;
      continue;
    }
    const double delay_ms =
        queue.backlog_bytes * 8.0 / config_.capacity_bps * 1e3;
    delay_sum += delay_ms;
    ++delay_count;
    stats.max_queue_delay_ms = std::max(stats.max_queue_delay_ms, delay_ms);
    queue.backlog_bytes += config_.packet_bytes;
  }
  if (delay_count > 0) {
    stats.mean_queue_delay_ms = delay_sum / static_cast<double>(delay_count);
  }
  return stats;
}

}  // namespace manic::sim
