#include "sim/demand.h"

#include <algorithm>
#include <cmath>

#include "stats/rng.h"

namespace manic::sim {

using stats::DayOf;
using stats::IsWeekend;
using stats::kSecPerMin;
using stats::LocalHour;
using stats::LocalWeekday;

namespace {

double Gaussian(double x, double mu, double sigma) noexcept {
  // Wrap-around distance on the 24h circle.
  double d = std::fabs(x - mu);
  d = std::min(d, 24.0 - d);
  return std::exp(-d * d / (2.0 * sigma * sigma));
}

}  // namespace

double DiurnalShape::At(double local_hour, bool weekend) const noexcept {
  const double peak = weekend ? peak_hour + weekend_peak_shift_h : peak_hour;
  double s = trough;
  s += (1.0 - trough) * Gaussian(local_hour, peak, peak_width_h);
  s += morning_bump * Gaussian(local_hour, 10.0, 2.0);
  if (weekend) s *= weekend_scale;
  return std::clamp(s, 0.01, 1.05);
}

double LinkDemand::PeakTarget(std::int64_t day) const noexcept {
  double target = default_peak_utilization;
  for (const DemandRegime& r : regimes) {
    if (day >= r.start_day && day < r.end_day) {
      if (r.peak_utilization_end >= 0.0 && r.end_day > r.start_day) {
        const double frac = static_cast<double>(day - r.start_day) /
                            static_cast<double>(r.end_day - r.start_day);
        target = r.peak_utilization +
                 frac * (r.peak_utilization_end - r.peak_utilization);
      } else {
        target = r.peak_utilization;
      }
    }
  }
  return target;
}

double LinkDemand::MeanUtilization(TimeSec t,
                                   int utc_offset_hours) const noexcept {
  const std::int64_t day = DayOf(t);
  const double hour = LocalHour(t, utc_offset_hours);
  const bool weekend = IsWeekend(LocalWeekday(t, utc_offset_hours));
  return PeakTarget(day) * shape.At(hour, weekend);
}

double LinkDemand::Utilization(TimeSec t, int utc_offset_hours) const noexcept {
  const double mean = MeanUtilization(t, utc_offset_hours);
  if (noise_sigma <= 0.0) return mean;
  // Reproducible noise keyed by (link seed, 5-minute slot): two independent
  // uniform draws approximate a normal via sum-of-uniforms; cheap and smooth
  // enough for multiplicative load noise.
  const std::uint64_t slot = static_cast<std::uint64_t>(t / (5 * kSecPerMin));
  const double u1 = stats::Rng::HashToUnit(noise_seed, slot, 0x51);
  const double u2 = stats::Rng::HashToUnit(noise_seed, slot, 0x52);
  const double gauss = (u1 + u2 - 1.0) * 1.732;  // ~N(0,0.5) -> scaled below
  return std::max(0.0, mean * (1.0 + noise_sigma * gauss * 1.414));
}

}  // namespace manic::sim
