// The narrow fault-injection seam between the simulator/measurement stack
// and a fault schedule. SimNetwork consults an installed FaultHook on every
// link crossing (outages, capacity brownouts), on every probe (vantage-point
// outages), at every responder (ICMP blackhole and rate-limit regime
// changes), and during path selection (route churn epochs); the probing loop
// additionally consults the per-VP clock skew and telemetry-drop queries
// when it timestamps and stores measurements. Every query is a pure function
// of (schedule, arguments) — no internal state, no wall clock — so a faulted
// run is replayable bit-identically at any thread count. The default
// implementation of every query is "no fault", and a null hook means the
// same, so the unfaulted pipeline is untouched.
#pragma once

#include <cstdint>

#include "stats/timeseries.h"
#include "topo/topology.h"

namespace manic::sim {

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // State of one link at time t: down links lose every packet; a capacity
  // scale below 1 divides the effective capacity (a brownout), inflating
  // utilization for the same offered demand.
  struct LinkState {
    bool up = true;
    double capacity_scale_frac = 1.0;  // effective = nominal * scale
  };
  virtual LinkState LinkAt(topo::LinkId /*link*/,
                           stats::TimeSec /*t*/) const {
    return {};
  }

  // ICMP regime of one router at time t: blackholed routers answer nothing;
  // extra_loss_frac models a rate-limit regime dropping that fraction of
  // responses on top of the router's static profile.
  struct IcmpState {
    bool blackholed = false;
    double extra_loss_frac = 0.0;
  };
  virtual IcmpState IcmpAt(topo::RouterId /*router*/,
                           stats::TimeSec /*t*/) const {
    return {};
  }

  // False while the vantage point is out (host crash, connectivity loss):
  // probes neither leave nor return, and the probing loop records a gap.
  virtual bool VpUpAt(topo::VpId /*vp*/, stats::TimeSec /*t*/) const {
    return true;
  }

  // Clock error of the VP's measurement host at time t, added to recorded
  // timestamps. Keep |skew| below the probing round interval so stored
  // series stay time-ordered (FaultPlan::Validate warns otherwise).
  virtual stats::TimeSec ClockSkewAt(topo::VpId /*vp*/,
                                     stats::TimeSec /*t*/) const {
    return 0;
  }

  // True when the telemetry write of `vp` at time t is silently lost before
  // reaching the time-series backend. `noise` lets one round's writes fail
  // independently per series.
  virtual bool DropTsdbWriteAt(topo::VpId /*vp*/, stats::TimeSec /*t*/,
                               std::uint64_t /*noise*/) const {
    return false;
  }

  // Routing epoch at time t: each route-churn event bumps the epoch, which
  // re-seeds ECMP egress selection so paths can move off (or onto) a
  // monitored link mid-study, exactly like a BGP path change.
  virtual std::uint32_t RouteEpochAt(stats::TimeSec /*t*/) const { return 0; }
};

}  // namespace manic::sim
