#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace manic::sim {

using stats::kSecPerMin;
using stats::StartOfDay;

namespace {

// Host stack + NIC latency at the probing host and at destination hosts.
constexpr double kHostStackMs = 0.15;
constexpr double kDestHostMs = 0.5;

}  // namespace

SimNetwork::SimNetwork(topo::Topology& topo, std::uint64_t seed)
    : topo_(&topo), routing_(topo), rng_(seed), seed_(seed) {}

void SimNetwork::SetDemand(LinkId link, Direction dir, LinkDemand demand) {
  if (dynamics_.size() <= link) dynamics_.resize(topo_->LinkCount());
  LinkDynamics& dyn = dynamics_[link];
  const topo::Link& l = topo_->link(link);
  dyn.utc_offset_hours = topo_->router(l.router_a).utc_offset_hours;
  if (demand.noise_seed == 0) {
    demand.noise_seed = stats::Rng::HashMix(seed_, link, static_cast<int>(dir));
  }
  dyn.demand[static_cast<int>(dir)] = std::move(demand);
}

LinkDemand& SimNetwork::DemandFor(LinkId link, Direction dir) {
  if (dynamics_.size() <= link || !dynamics_[link].demand[static_cast<int>(dir)]) {
    SetDemand(link, dir, LinkDemand{});
  }
  return *dynamics_[link].demand[static_cast<int>(dir)];
}

void SimNetwork::SetQueueModel(LinkId link, LinkQueueModel model) {
  if (dynamics_.size() <= link) dynamics_.resize(topo_->LinkCount());
  dynamics_[link].queue = model;
}

void SimNetwork::SetReturnOverride(RouterId from_router, Asn dst_as,
                                   LinkId via_link) {
  return_overrides_[{from_router, dst_as}] = via_link;
}

void SimNetwork::InvalidatePaths() {
  path_cache_.clear();
  routing_.Invalidate();
}

double SimNetwork::FaultedUtilization(const LinkDemand& demand,
                                      const LinkDynamics& dyn, LinkId link,
                                      TimeSec t, bool* up) const {
  double u = demand.Utilization(t, dyn.utc_offset_hours);
  if (up != nullptr) *up = true;
  if (fault_hook_ != nullptr) {
    const FaultHook::LinkState fs = fault_hook_->LinkAt(link, t);
    if (!fs.up) {
      if (up != nullptr) *up = false;
      return 0.0;  // nothing crosses a dead link
    }
    if (fs.capacity_scale_frac > 0.0 && fs.capacity_scale_frac < 1.0) {
      u /= fs.capacity_scale_frac;  // same demand over less capacity
    }
  }
  return u;
}

double SimNetwork::MeanUtilization(LinkId link, Direction dir,
                                   TimeSec t) const {
  if (dynamics_.size() <= link) return 0.0;
  const auto& demand = dynamics_[link].demand[static_cast<int>(dir)];
  if (!demand) return 0.0;
  double u = demand->MeanUtilization(t, dynamics_[link].utc_offset_hours);
  if (fault_hook_ != nullptr) {
    const FaultHook::LinkState fs = fault_hook_->LinkAt(link, t);
    if (!fs.up) return 0.0;
    if (fs.capacity_scale_frac > 0.0 && fs.capacity_scale_frac < 1.0) {
      u /= fs.capacity_scale_frac;
    }
  }
  return u;
}

double SimNetwork::TrueCongestedFraction(LinkId link, Direction dir,
                                         std::int64_t day,
                                         double threshold) const {
  if (dynamics_.size() <= link) return 0.0;
  const auto& demand = dynamics_[link].demand[static_cast<int>(dir)];
  if (!demand) return 0.0;
  const TimeSec start = StartOfDay(day);
  int congested_minutes = 0;
  for (int m = 0; m < 1440; ++m) {
    // MeanUtilization folds in fault state (brownouts, outages).
    const double u = MeanUtilization(link, dir, start + m * kSecPerMin);
    if (u >= threshold) ++congested_minutes;
  }
  return congested_minutes / 1440.0;
}

int SimNetwork::LinkUtcOffset(LinkId link) const {
  if (dynamics_.size() > link) return dynamics_[link].utc_offset_hours;
  return topo_->router(topo_->link(link).router_a).utc_offset_hours;
}

LinkId SimNetwork::ChooseEgressLink(RouterId cur, Asn cur_as, Asn next_as,
                                    Ipv4Addr dst, FlowId flow,
                                    bool first_transition, RouterId path_start,
                                    std::uint32_t route_epoch) const {
  if (first_transition) {
    const auto ov = return_overrides_.find(
        {path_start, topo_->Prefix2As().Lookup(dst).value_or(0)});
    if (ov != return_overrides_.end()) {
      const topo::Link& l = topo_->link(ov->second);
      if ((l.as_a == cur_as && l.as_b == next_as) ||
          (l.as_b == cur_as && l.as_a == next_as)) {
        return ov->second;
      }
    }
  }
  const std::vector<LinkId> candidates =
      topo_->InterdomainLinksBetween(cur_as, next_as);
  if (candidates.empty()) return topo::kInvalidId;
  // Hot potato: nearest egress in intra-AS hops.
  int best = std::numeric_limits<int>::max();
  std::vector<LinkId> tied;
  for (const LinkId lid : candidates) {
    const topo::Link& l = topo_->link(lid);
    const RouterId near = l.as_a == cur_as ? l.router_a : l.router_b;
    const int d = routing_.IntraDistance(cur, near);
    if (d < best) {
      best = d;
      tied.clear();
    }
    if (d == best) tied.push_back(lid);
  }
  if (tied.empty()) return topo::kInvalidId;
  std::sort(tied.begin(), tied.end());
  // Per-flow ECMP among equal-cost egresses: hash of (flow, dst, AS pair).
  // A nonzero route-churn epoch re-salts the hash (paths may move); epoch 0
  // reproduces the historical selection bit-for-bit.
  std::uint64_t h = stats::Rng::HashMix(
      flow.value, dst.value(), (std::uint64_t{cur_as} << 32) | next_as);
  if (route_epoch != 0) h = stats::Rng::HashMix(h, route_epoch, 0xEC);
  return tied[h % tied.size()];
}

namespace {

// Link connecting two routers directly (intra-AS), if any.
topo::LinkId FindIntraLink(const topo::Topology& topo, RouterId a, RouterId b) {
  for (const topo::LinkId lid : topo.LinksOf(a, topo::LinkKind::kIntra)) {
    if (topo.PeerRouter(topo.link(lid), a) == b) return lid;
  }
  return topo::kInvalidId;
}

}  // namespace

ForwardPath SimNetwork::ComputePath(RouterId start, Ipv4Addr dst, FlowId flow,
                                    std::uint32_t route_epoch) const {
  ForwardPath path;
  path.dst = dst;
  const auto origin = topo_->Prefix2As().Lookup(dst);
  if (!origin) return path;
  path.dst_as = *origin;

  const Asn start_as = topo_->router(start).owner;
  const std::vector<Asn> as_path = routing_.AsPath(start_as, *origin);
  if (as_path.empty()) return path;

  RouterId cur = start;
  auto append_intra = [&](RouterId to) -> bool {
    const auto intra = routing_.IntraPath(cur, to);
    if (!intra) return false;
    for (std::size_t i = 1; i < intra->size(); ++i) {
      const LinkId lid = FindIntraLink(*topo_, (*intra)[i - 1], (*intra)[i]);
      const topo::Link& l = topo_->link(lid);
      const Direction dir =
          l.router_a == (*intra)[i - 1] ? Direction::kAtoB : Direction::kBtoA;
      path.hops.push_back({(*intra)[i], topo_->IfaceOn(l, (*intra)[i]), lid, dir});
    }
    cur = to;
    return true;
  };

  for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
    const Asn cur_as = as_path[i];
    const Asn next_as = as_path[i + 1];
    const LinkId lid = ChooseEgressLink(cur, cur_as, next_as, dst, flow,
                                        i == 0, start, route_epoch);
    if (lid == topo::kInvalidId) return path;
    const topo::Link& l = topo_->link(lid);
    const RouterId near = l.as_a == cur_as ? l.router_a : l.router_b;
    const RouterId far = topo_->PeerRouter(l, near);
    if (!append_intra(near)) return path;
    const Direction dir =
        l.router_a == near ? Direction::kAtoB : Direction::kBtoA;
    path.hops.push_back({far, topo_->IfaceOn(l, far), lid, dir});
    cur = far;
  }

  // Destination attachment inside the origin AS.
  RouterId dest_router = topo::kInvalidId;
  LinkId host_link = topo::kInvalidId;
  Direction host_dir = Direction::kAtoB;
  const auto dest_iface = topo_->IfaceByAddr(dst);
  bool is_vp_host = false;
  for (const topo::VantagePoint& vp : topo_->vps()) {
    if (vp.addr == dst) {
      dest_router = vp.first_hop;
      host_link = vp.uplink;
      // Uplink iface_a is on the first-hop router; host side is b.
      host_dir = Direction::kAtoB;
      is_vp_host = true;
      break;
    }
  }
  if (!is_vp_host) {
    if (dest_iface) {
      // Destination is a router interface itself; attach at that router.
      // When the interface borrows address space from the AS across the
      // link (interdomain /31s are numbered from one side), the covering
      // prefix routes the packet to the *near* router, which delivers over
      // the connected point-to-point link: route to the link's other end
      // first, then cross.
      dest_router = topo_->iface(*dest_iface).router;
      if (topo_->router(dest_router).owner != *origin &&
          topo_->iface(*dest_iface).link != topo::kInvalidId) {
        const topo::Link& plink = topo_->link(topo_->iface(*dest_iface).link);
        const RouterId near_side = topo_->PeerRouter(plink, dest_router);
        if (near_side != topo::kInvalidId &&
            topo_->router(near_side).owner == *origin) {
          if (!append_intra(near_side)) return path;
          const Direction dir = plink.router_a == near_side
                                    ? Direction::kAtoB
                                    : Direction::kBtoA;
          path.hops.push_back({dest_router, *dest_iface, plink.id, dir});
          path.host_delay_ms = 0.0;  // responding interface IS the target
          path.reached = true;
          return path;
        }
      }
    } else {
      const topo::AsInfo* info = topo_->FindAs(*origin);
      if (info == nullptr || info->routers.empty()) return path;
      dest_router = info->routers[stats::Rng::HashMix(dst.value(), 0xD357) %
                                  info->routers.size()];
    }
  }
  if (!append_intra(dest_router)) return path;
  path.host_link = host_link;
  path.host_dir = host_dir;
  path.host_delay_ms = is_vp_host ? kHostStackMs : kDestHostMs;
  path.reached = true;
  return path;
}

const ForwardPath& SimNetwork::PathFromRouter(RouterId start, Ipv4Addr dst,
                                              FlowId flow,
                                              std::uint32_t route_epoch) {
  const auto key = std::make_tuple(
      start, dst.value(),
      (route_epoch << 16) | std::uint32_t{flow.value});
  auto it = path_cache_.find(key);
  if (it == path_cache_.end()) {
    it = path_cache_.emplace(key, ComputePath(start, dst, flow, route_epoch))
             .first;
  }
  return it->second;
}

const ForwardPath& SimNetwork::PathFromVp(VpId vp, Ipv4Addr dst, FlowId flow,
                                          std::uint32_t route_epoch) {
  const topo::VantagePoint& v = topo_->vp(vp);
  // VP paths are cached under the first-hop router with a bit marking the
  // uplink prepend; encode by offsetting the flow — instead, keep a separate
  // cache keyed by (router | 0x80000000).
  const auto key = std::make_tuple(
      v.first_hop | 0x80000000u, dst.value(),
      (route_epoch << 16) | std::uint32_t{flow.value});
  auto it = path_cache_.find(key);
  if (it == path_cache_.end()) {
    ForwardPath path = ComputePath(v.first_hop, dst, flow, route_epoch);
    // Prepend the first-hop router as hop 0 (TTL=1 expires there), reached
    // via the host uplink.
    const topo::Link& up = topo_->link(v.uplink);
    Hop first;
    first.router = v.first_hop;
    first.ingress_iface = up.iface_a;
    first.via_link = v.uplink;
    first.via_dir = Direction::kBtoA;  // host side (b) -> router (a)
    path.hops.insert(path.hops.begin(), first);
    it = path_cache_.emplace(key, std::move(path)).first;
  }
  return it->second;
}

SimNetwork::SegmentCost SimNetwork::CrossLink(LinkId link, Direction dir,
                                              TimeSec t,
                                              std::uint64_t noise_key) {
  SegmentCost cost;
  const topo::Link& l = topo_->link(link);
  cost.delay_ms = l.propagation_ms();
  if (fault_hook_ != nullptr && !fault_hook_->LinkAt(link, t).up) {
    cost.lost = true;  // a down link loses every packet
    return cost;
  }
  if (dynamics_.size() > link) {
    const LinkDynamics& dyn = dynamics_[link];
    const auto& demand = dyn.demand[static_cast<int>(dir)];
    if (demand) {
      const double u = FaultedUtilization(*demand, dyn, link, t, nullptr);
      const QueueObservation obs = dyn.queue.Observe(u);
      cost.delay_ms += obs.delay_ms;
      if (obs.loss_prob > 0.0 &&
          stats::Rng::HashToUnit(noise_key, link, t) < obs.loss_prob) {
        cost.lost = true;
      }
    }
  }
  return cost;
}

SimNetwork::SegmentCost SimNetwork::AccumulatePath(const ForwardPath& path,
                                                   std::size_t hop_count,
                                                   TimeSec t,
                                                   std::uint64_t noise_key) {
  SegmentCost total;
  for (std::size_t i = 0; i < hop_count && i < path.hops.size(); ++i) {
    const Hop& hop = path.hops[i];
    if (hop.via_link == topo::kInvalidId) continue;
    const SegmentCost c =
        CrossLink(hop.via_link, hop.via_dir, t,
                  stats::Rng::HashMix(noise_key, i, 0xACC));
    total.delay_ms += c.delay_ms;
    total.lost = total.lost || c.lost;
  }
  return total;
}

ProbeReply SimNetwork::Probe(VpId vp, Ipv4Addr dst, int ttl, FlowId flow,
                             TimeSec t) {
  ProbeReply reply;
  // A VP that is out never puts a packet on the wire.
  if (fault_hook_ != nullptr && !fault_hook_->VpUpAt(vp, t)) return reply;
  ++probes_sent_;
  const std::uint32_t epoch = RouteEpochAt(t);
  const ForwardPath& path = PathFromVp(vp, dst, flow, epoch);
  if (path.hops.empty()) return reply;

  const std::uint64_t pkey = stats::Rng::HashMix(seed_, probes_sent_, t);

  const bool expires = ttl <= static_cast<int>(path.hops.size());
  if (expires) {
    const std::size_t idx = static_cast<std::size_t>(ttl) - 1;
    const SegmentCost fwd = AccumulatePath(path, idx + 1, t, pkey);
    if (fwd.lost) return reply;
    const topo::Router& responder = topo_->router(path.hops[idx].router);
    if (!responder.icmp.responds) return reply;
    if (fault_hook_ != nullptr) {
      const FaultHook::IcmpState ic =
          fault_hook_->IcmpAt(path.hops[idx].router, t);
      if (ic.blackholed) return reply;
      if (ic.extra_loss_frac > 0.0 && rng_.Bernoulli(ic.extra_loss_frac)) {
        return reply;
      }
    }
    if (rng_.Bernoulli(responder.icmp.response_loss_prob)) return reply;
    double icmp_ms = 0.0;
    if (rng_.Bernoulli(responder.icmp.slow_path_prob)) {
      icmp_ms = responder.icmp.slow_path_extra_ms * (0.5 + rng_.NextDouble());
    }
    // Reverse path of the ICMP time-exceeded message.
    const topo::VantagePoint& v = topo_->vp(vp);
    const ForwardPath& rev =
        PathFromRouter(path.hops[idx].router, v.addr, flow, epoch);
    if (!rev.reached) return reply;
    const SegmentCost back =
        AccumulatePath(rev, rev.hops.size(), t, stats::Rng::HashMix(pkey, 1));
    if (back.lost) return reply;
    double back_host_ms = rev.host_delay_ms;
    if (rev.host_link != topo::kInvalidId) {
      const SegmentCost hostc = CrossLink(rev.host_link, rev.host_dir, t,
                                          stats::Rng::HashMix(pkey, 2));
      if (hostc.lost) return reply;
      back_host_ms += hostc.delay_ms;
    }
    reply.outcome = ProbeOutcome::kTtlExpired;
    reply.responder = topo_->iface(path.hops[idx].ingress_iface).addr;
    reply.hop_index = static_cast<int>(idx);
    reply.ip_id = ++responder.ip_id_counter;
    reply.rtt_ms = kHostStackMs + fwd.delay_ms + icmp_ms + back.delay_ms +
                   back_host_ms + rng_.Exponential(0.12);
    return reply;
  }

  // Reaches the destination host: ICMP echo reply.
  if (!path.reached) return reply;
  const SegmentCost fwd = AccumulatePath(path, path.hops.size(), t, pkey);
  if (fwd.lost) return reply;
  double fwd_host_ms = path.host_delay_ms;
  if (path.host_link != topo::kInvalidId) {
    const SegmentCost hostc = CrossLink(path.host_link, path.host_dir, t,
                                        stats::Rng::HashMix(pkey, 3));
    if (hostc.lost) return reply;
    fwd_host_ms += hostc.delay_ms;
  }
  const RouterId dest_router = path.hops.empty()
                                   ? topo_->vp(vp).first_hop
                                   : path.hops.back().router;
  // A blackholed router answers nothing, echo requests included.
  if (fault_hook_ != nullptr && topo_->IfaceByAddr(dst).has_value() &&
      fault_hook_->IcmpAt(dest_router, t).blackholed) {
    return reply;
  }
  const topo::VantagePoint& v = topo_->vp(vp);
  const ForwardPath& rev = PathFromRouter(dest_router, v.addr, flow, epoch);
  if (!rev.reached) return reply;
  const SegmentCost back =
      AccumulatePath(rev, rev.hops.size(), t, stats::Rng::HashMix(pkey, 4));
  if (back.lost) return reply;
  double back_host_ms = rev.host_delay_ms;
  if (rev.host_link != topo::kInvalidId) {
    const SegmentCost hostc = CrossLink(rev.host_link, rev.host_dir, t,
                                        stats::Rng::HashMix(pkey, 5));
    if (hostc.lost) return reply;
    back_host_ms += hostc.delay_ms;
  }
  reply.outcome = ProbeOutcome::kEchoReply;
  reply.responder = dst;
  reply.hop_index = static_cast<int>(path.hops.size());
  // Echo replies from router-owned addresses carry the router's shared IP-ID
  // counter (the signal Ally-style alias resolution relies on); plain hosts
  // get an arbitrary value.
  if (const auto difc = topo_->IfaceByAddr(dst)) {
    reply.ip_id = ++topo_->router(topo_->iface(*difc).router).ip_id_counter;
  } else {
    reply.ip_id = static_cast<std::uint32_t>(stats::Rng::HashMix(dst.value(), t));
  }
  reply.rtt_ms = kHostStackMs + fwd.delay_ms + fwd_host_ms + back.delay_ms +
                 back_host_ms + rng_.Exponential(0.12);
  return reply;
}

ProbeReply SimNetwork::Ping(VpId vp, Ipv4Addr dst, FlowId flow, TimeSec t) {
  return Probe(vp, dst, 255, flow, t);
}

SimNetwork::RecordRouteReply SimNetwork::ProbeRecordRoute(VpId vp,
                                                          Ipv4Addr dst,
                                                          int ttl, FlowId flow,
                                                          TimeSec t) {
  RecordRouteReply rr;
  rr.reply = Probe(vp, dst, ttl, flow, t);
  if (rr.reply.outcome != ProbeOutcome::kTtlExpired) return rr;
  // Reconstruct the reply's path (the same one Probe() charged delay/loss
  // against) and record the egress interface of each traversed router.
  const std::uint32_t epoch = RouteEpochAt(t);
  const ForwardPath& fwd = PathFromVp(vp, dst, flow, epoch);
  const std::size_t idx = static_cast<std::size_t>(ttl) - 1;
  if (idx >= fwd.hops.size()) return rr;
  const topo::VantagePoint& v = topo_->vp(vp);
  const ForwardPath& rev =
      PathFromRouter(fwd.hops[idx].router, v.addr, flow, epoch);
  RouterId cur = fwd.hops[idx].router;
  for (const Hop& hop : rev.hops) {
    if (rr.reverse_route.size() >= kRecordRouteSlots) break;
    if (hop.via_link == topo::kInvalidId) continue;
    const topo::Link& l = topo_->link(hop.via_link);
    // Egress iface of the router the packet LEFT (the RR convention).
    const topo::IfaceId egress = topo_->IfaceOn(l, cur);
    if (egress != topo::kInvalidId && topo_->router(cur).icmp.responds) {
      rr.reverse_route.push_back(topo_->iface(egress).addr);
    }
    cur = hop.router;
  }
  return rr;
}

double SimNetwork::ObservedQueueDelayMs(LinkId link, Direction dir,
                                        TimeSec t) const {
  if (dynamics_.size() <= link) return 0.0;
  const LinkDynamics& dyn = dynamics_[link];
  const auto& demand = dyn.demand[static_cast<int>(dir)];
  if (!demand) return 0.0;
  bool up = true;
  const double u = FaultedUtilization(*demand, dyn, link, t, &up);
  if (!up) return 0.0;  // nothing queues on a dead link (and nothing returns)
  return dyn.queue.Observe(u).delay_ms;
}

double SimNetwork::ObservedLossProb(LinkId link, Direction dir,
                                    TimeSec t) const {
  if (dynamics_.size() <= link) return 0.0;
  const LinkDynamics& dyn = dynamics_[link];
  const auto& demand = dyn.demand[static_cast<int>(dir)];
  if (!demand) return 0.0;
  bool up = true;
  const double u = FaultedUtilization(*demand, dyn, link, t, &up);
  if (!up) return 1.0;  // a down link loses every packet
  return dyn.queue.Observe(u).loss_prob;
}

SimNetwork::ProbeExpectation SimNetwork::ExpectProbe(VpId vp, Ipv4Addr dst,
                                                     int ttl, FlowId flow,
                                                     TimeSec t,
                                                     bool include_queues) {
  ProbeExpectation exp;
  if (fault_hook_ != nullptr && !fault_hook_->VpUpAt(vp, t)) {
    return exp;  // VP out: no probe leaves the host
  }
  const std::uint32_t epoch = RouteEpochAt(t);
  const ForwardPath& path = PathFromVp(vp, dst, flow, epoch);
  if (path.hops.empty() || ttl > static_cast<int>(path.hops.size())) {
    return exp;  // expectation API covers TTL-limited probes only
  }
  const std::size_t idx = static_cast<std::size_t>(ttl) - 1;

  double delay = kHostStackMs;
  double ok = 1.0;
  auto cross_mean = [&](LinkId link, Direction dir) {
    const topo::Link& l = topo_->link(link);
    delay += l.propagation_ms();
    if (fault_hook_ != nullptr && !fault_hook_->LinkAt(link, t).up) {
      ok = 0.0;
      return;
    }
    if (include_queues && dynamics_.size() > link) {
      const LinkDynamics& dyn = dynamics_[link];
      const auto& demand = dyn.demand[static_cast<int>(dir)];
      if (demand) {
        const double u = FaultedUtilization(*demand, dyn, link, t, nullptr);
        const QueueObservation obs = dyn.queue.Observe(u);
        delay += obs.delay_ms;
        ok *= 1.0 - obs.loss_prob;
      }
    }
  };
  for (std::size_t i = 0; i <= idx; ++i) {
    if (path.hops[i].via_link != topo::kInvalidId) {
      cross_mean(path.hops[i].via_link, path.hops[i].via_dir);
    }
  }
  const topo::Router& responder = topo_->router(path.hops[idx].router);
  if (!responder.icmp.responds) return exp;
  if (fault_hook_ != nullptr) {
    const FaultHook::IcmpState ic =
        fault_hook_->IcmpAt(path.hops[idx].router, t);
    if (ic.blackholed) return exp;
    ok *= 1.0 - ic.extra_loss_frac;
  }
  ok *= 1.0 - responder.icmp.response_loss_prob;
  delay += responder.icmp.slow_path_prob * responder.icmp.slow_path_extra_ms;

  const topo::VantagePoint& v = topo_->vp(vp);
  const ForwardPath& rev =
      PathFromRouter(path.hops[idx].router, v.addr, flow, epoch);
  if (!rev.reached) return exp;
  for (const Hop& hop : rev.hops) {
    if (hop.via_link != topo::kInvalidId) cross_mean(hop.via_link, hop.via_dir);
  }
  if (rev.host_link != topo::kInvalidId) {
    cross_mean(rev.host_link, rev.host_dir);
  }
  delay += rev.host_delay_ms;

  exp.reachable = true;
  exp.rtt_ms = delay + 0.12;  // mean of the per-probe jitter term
  exp.loss_prob = 1.0 - ok;
  exp.responder = topo_->iface(path.hops[idx].ingress_iface).addr;
  return exp;
}

PathMetrics SimNetwork::MetricsFor(VpId vp, Ipv4Addr dst, FlowId flow,
                                   TimeSec t) {
  PathMetrics m;
  if (fault_hook_ != nullptr && !fault_hook_->VpUpAt(vp, t)) return m;
  const std::uint32_t epoch = RouteEpochAt(t);
  const ForwardPath& fwd = PathFromVp(vp, dst, flow, epoch);
  if (!fwd.reached) return m;
  const topo::VantagePoint& v = topo_->vp(vp);
  const RouterId dest_router =
      fwd.hops.empty() ? v.first_hop : fwd.hops.back().router;
  const ForwardPath& rev = PathFromRouter(dest_router, v.addr, flow, epoch);
  if (!rev.reached) return m;
  m.reachable = true;
  m.min_capacity_gbps = std::numeric_limits<double>::infinity();

  auto scan = [&](const ForwardPath& p, bool down) {
    double ok = 1.0;
    for (const Hop& hop : p.hops) {
      if (hop.via_link == topo::kInvalidId) continue;
      const topo::Link& l = topo_->link(hop.via_link);
      m.rtt_ms += l.propagation_ms();
      if (fault_hook_ != nullptr && !fault_hook_->LinkAt(hop.via_link, t).up) {
        ok = 0.0;
        continue;
      }
      if (dynamics_.size() > hop.via_link) {
        const LinkDynamics& dyn = dynamics_[hop.via_link];
        const auto& demand = dyn.demand[static_cast<int>(hop.via_dir)];
        if (demand) {
          const double u =
              FaultedUtilization(*demand, dyn, hop.via_link, t, nullptr);
          const QueueObservation obs = dyn.queue.Observe(u);
          m.rtt_ms += obs.delay_ms;
          ok *= 1.0 - obs.loss_prob;
          if (down && (l.kind == topo::LinkKind::kInterdomain ||
                       l.kind == topo::LinkKind::kIxp)) {
            if (u > m.worst_down_utilization) {
              m.worst_down_utilization = u;
              m.worst_down_link = hop.via_link;
            }
          }
        }
      }
      if (l.kind == topo::LinkKind::kInterdomain ||
          l.kind == topo::LinkKind::kIxp) {
        m.min_capacity_gbps = std::min(m.min_capacity_gbps, l.capacity_gbps());
      }
    }
    return 1.0 - ok;
  };

  m.loss_up = scan(fwd, /*down=*/false);
  m.loss_down = scan(rev, /*down=*/true);
  m.rtt_ms += fwd.host_delay_ms + rev.host_delay_ms + kHostStackMs;
  if (!std::isfinite(m.min_capacity_gbps)) m.min_capacity_gbps = 1.0;
  return m;
}

}  // namespace manic::sim
