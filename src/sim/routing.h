// AS-level route computation following the standard Gao-Rexford model the
// paper's ecosystem obeys: routes learned from customers are exported to
// everyone; routes learned from peers/providers are exported only to
// customers. Selection prefers customer > peer > provider routes, then
// shortest AS path, then lowest next-hop ASN. Intra-AS router paths are
// shortest-hop (BFS); egress selection among parallel interdomain links is
// hot-potato (closest to the ingress router) with deterministic per-flow
// ECMP tie-breaking — the mechanism that makes TSLP pin its ICMP checksum
// (§3.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "topo/topology.h"

namespace manic::sim {

using topo::Asn;
using topo::LinkId;
using topo::RouterId;

enum class RouteType : std::uint8_t { kNone, kOrigin, kCustomer, kPeer, kProvider };

struct AsRouteEntry {
  RouteType type = RouteType::kNone;
  int length = 0;       // AS hops to the origin
  Asn next_hop = 0;     // neighbor AS the route was learned from
  bool Reachable() const noexcept { return type != RouteType::kNone; }
};

class BgpRouting {
 public:
  explicit BgpRouting(const topo::Topology& topo) : topo_(&topo) {}

  // Best route entry at `src` toward `origin` (computed lazily, cached).
  AsRouteEntry Route(Asn src, Asn origin) const;

  // Full AS path src..origin; empty when unreachable.
  std::vector<Asn> AsPath(Asn src, Asn origin) const;

  // Drops all cached routing state (after topology/relationship changes).
  void Invalidate() noexcept {
    per_origin_.clear();
    ++epoch_;
  }
  std::uint64_t epoch() const noexcept { return epoch_; }

  // Shortest intra-AS router path (inclusive of both endpoints); both
  // routers must belong to the same AS. nullopt when disconnected.
  std::optional<std::vector<RouterId>> IntraPath(RouterId from,
                                                 RouterId to) const;
  // Hop count of IntraPath, or a large sentinel when disconnected.
  int IntraDistance(RouterId from, RouterId to) const;

 private:
  struct OriginTable {
    std::map<Asn, AsRouteEntry> entries;
  };
  const OriginTable& TableFor(Asn origin) const;
  void Compute(Asn origin, OriginTable& table) const;

  const topo::Topology* topo_ = nullptr;
  mutable std::map<Asn, OriginTable> per_origin_;
  std::uint64_t epoch_ = 0;
};

}  // namespace manic::sim
