// Fluid-queue model of a link: maps instantaneous utilization to queueing
// delay and loss probability. Below saturation the queue behaves like an
// M/M/1-ish system (delay ~ u/(1-u), bounded by the buffer); at and above
// saturation the buffer stands full — delay plateaus at the buffer drain
// time and excess arrivals are dropped (loss = 1 - 1/u). This is exactly the
// signature TSLP looks for: elevated-but-flat latency plus loss during peak
// hours (cf. Fig 3). The packet-level simulator in packet_queue.h validates
// this closed form.
#pragma once

#include <algorithm>

namespace manic::sim {

struct QueueObservation {
  double delay_ms = 0.0;   // queueing delay (excl. propagation)
  double loss_prob = 0.0;  // probability an arriving packet is dropped
};

struct LinkQueueModel {
  double buffer_ms = 50.0;   // buffer depth in drain-time terms
  double service_ms = 0.25;  // mean per-packet service "granularity" knob
  double loss_floor = 0.0002;      // residual random loss
  double onset_utilization = 0.0;  // utilization below which delay ~ 0
  // Above saturation the *offered* demand exceeds capacity, but the demand
  // is TCP-elastic: senders back off, so the sustained loss rate grows
  // gently with the overload ratio and saturates at a few percent — the
  // regime operators actually observe on persistently congested interdomain
  // links (cf. the 1-3.5% loss panel of the paper's Fig 3). Inelastic
  // overload (loss = 1 - 1/u) is modelled by the packet-level simulator in
  // packet_queue.h for comparison.
  double sat_loss_slope = 0.05;  // d(loss)/d(overload ratio)
  double max_sat_loss = 0.035;   // elastic backoff cap

  QueueObservation Observe(double utilization) const noexcept {
    QueueObservation obs;
    const double u = std::max(0.0, utilization);
    if (u < 1.0) {
      const double eff = std::max(0.0, u - onset_utilization) /
                         std::max(1e-9, 1.0 - onset_utilization);
      obs.delay_ms = std::min(buffer_ms, service_ms * eff / (1.0 - eff + 1e-9));
      // Finite-buffer overflow becomes measurable only close to saturation.
      const double near_sat = std::max(0.0, (u - 0.96) / 0.04);
      obs.loss_prob = loss_floor + 0.004 * near_sat * near_sat;
    } else {
      obs.delay_ms = buffer_ms;
      obs.loss_prob = loss_floor + 0.004 +
                      std::min(max_sat_loss, (u - 1.0) * sat_loss_slope);
    }
    obs.loss_prob = std::clamp(obs.loss_prob, 0.0, 1.0);
    return obs;
  }
};

}  // namespace manic::sim
