// The thread-safe write front of the Database. Database itself is not
// internally synchronized (a SeriesRef handed to one reader must not be
// invalidated by a concurrent writer), so parallel study shards never write
// it directly: each worker appends into a BufferedWriter under a mutex, and
// the serial merge phase drains the buffer into the Database in canonical
// (measurement, tags, time, value) order. Because the drain order is a pure
// function of the buffered points — never of the append interleaving — the
// folded database is bit-identical at any thread count, which is the same
// contract runtime::StudyExecutor enforces for every other fold.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/thread_annotations.h"
#include "tsdb/tsdb.h"

namespace manic::tsdb {

class BufferedWriter {
 public:
  // Buffers one point. Safe to call from any thread.
  void Append(std::string measurement, TagSet tags, TimeSec t, double value)
      EXCLUDES(mu_);

  // Drains every buffered point into `db` in canonical order on the calling
  // thread; returns the number of points written. Callers keep the Database
  // contract that timestamps within one series are non-decreasing — the sort
  // restores it even when shards appended a series' points out of order.
  // Two buffered points may share (measurement, tags, time) only if they
  // also share the value; otherwise the series content itself would be
  // interleaving-dependent and no drain order could make it deterministic.
  std::size_t FlushTo(Database& db) EXCLUDES(mu_);

  std::size_t PendingPoints() const EXCLUDES(mu_);

 private:
  struct Point {
    std::string measurement;
    TagSet tags;
    std::string canonical_tags;  // cached TagSet::Canonical() sort key
    TimeSec t = 0;
    double value = 0.0;
  };
  mutable runtime::Mutex mu_;
  std::vector<Point> buffer_ GUARDED_BY(mu_);
};

}  // namespace manic::tsdb
