// The public data-access layer of the system (paper contribution 4: raw
// measurements released through an interactive interface and a query API).
// Queries use a compact URL-style syntax mirroring the deployed HTTP API:
//
//   <measurement>?tag1=v1&tag2=v2[&from=<sec>][&to=<sec>]
//                [&agg=min|max|mean|count|sum][&bin=<sec>]
//
// e.g.  tslp_rtt?vp=Comcast-nyc-us&side=far&from=0&to=86400&agg=min&bin=900
//
// Results come back as a series plus a JSON rendering for external tooling.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <string_view>

#include "tsdb/tsdb.h"

namespace manic::tsdb {

struct ApiQuery {
  std::string measurement;
  TagSet filter;
  TimeSec from = std::numeric_limits<TimeSec>::min();
  TimeSec to = std::numeric_limits<TimeSec>::max();
  std::optional<stats::BinAgg> agg;
  TimeSec bin = 900;
};

struct ApiResult {
  bool ok = false;
  std::string error;
  ApiQuery query;
  stats::TimeSeries series;

  // {"measurement":"...","points":[[t,v],...]} rendering.
  std::string ToJson() const;
};

// Parses the query string; nullopt with a reason on malformed input.
std::optional<ApiQuery> ParseQuery(std::string_view text, std::string* error);

// Executes a query string against a database.
ApiResult RunQuery(const Database& db, std::string_view text);

// JSON export of all matching series of a measurement (tags included):
// {"measurement":"...","series":[{"tags":{...},"points":[[t,v],...]},...]}.
std::string ExportJson(const Database& db, std::string_view measurement,
                       const TagSet& filter = {});

}  // namespace manic::tsdb
