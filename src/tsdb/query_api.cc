#include "tsdb/query_api.h"

#include <charconv>
#include <sstream>

namespace manic::tsdb {

namespace {

std::optional<stats::BinAgg> ParseAgg(std::string_view text) {
  if (text == "min") return stats::BinAgg::kMin;
  if (text == "max") return stats::BinAgg::kMax;
  if (text == "mean") return stats::BinAgg::kMean;
  if (text == "count") return stats::BinAgg::kCount;
  if (text == "sum") return stats::BinAgg::kSum;
  return std::nullopt;
}

std::optional<TimeSec> ParseTime(std::string_view text) {
  TimeSec value = 0;
  const auto [p, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || p != text.data() + text.size()) return std::nullopt;
  return value;
}

void AppendJsonEscaped(std::ostringstream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

void AppendPoints(std::ostringstream& os, const stats::TimeSeries& series) {
  os << '[';
  bool first = true;
  for (const stats::Point& p : series.points()) {
    if (!first) os << ',';
    first = false;
    os << '[' << p.t << ',' << p.value << ']';
  }
  os << ']';
}

}  // namespace

std::optional<ApiQuery> ParseQuery(std::string_view text, std::string* error) {
  ApiQuery query;
  const auto qmark = text.find('?');
  query.measurement = std::string(text.substr(0, qmark));
  if (query.measurement.empty()) {
    *error = "empty measurement name";
    return std::nullopt;
  }
  if (qmark == std::string_view::npos) return query;

  std::string_view rest = text.substr(qmark + 1);
  while (!rest.empty()) {
    const auto amp = rest.find('&');
    const std::string_view param = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    if (param.empty()) continue;
    const auto eq = param.find('=');
    if (eq == std::string_view::npos) {
      *error = "parameter without '=': " + std::string(param);
      return std::nullopt;
    }
    const std::string_view key = param.substr(0, eq);
    const std::string_view value = param.substr(eq + 1);
    if (key == "from" || key == "to") {
      const auto t = ParseTime(value);
      if (!t) {
        *error = "bad timestamp: " + std::string(value);
        return std::nullopt;
      }
      (key == "from" ? query.from : query.to) = *t;
    } else if (key == "agg") {
      query.agg = ParseAgg(value);
      if (!query.agg) {
        *error = "unknown aggregator: " + std::string(value);
        return std::nullopt;
      }
    } else if (key == "bin") {
      const auto b = ParseTime(value);
      if (!b || *b <= 0) {
        *error = "bad bin width: " + std::string(value);
        return std::nullopt;
      }
      query.bin = *b;
    } else {
      query.filter.Set(std::string(key), std::string(value));
    }
  }
  return query;
}

ApiResult RunQuery(const Database& db, std::string_view text) {
  ApiResult result;
  std::string error;
  const auto query = ParseQuery(text, &error);
  if (!query) {
    result.error = error;
    return result;
  }
  result.query = *query;
  if (query->agg) {
    result.series =
        db.QueryDownsampled(query->measurement, query->filter, query->from,
                            query->to, query->bin, *query->agg);
  } else {
    result.series =
        db.QueryMerged(query->measurement, query->filter, query->from,
                       query->to);
  }
  result.ok = true;
  return result;
}

std::string ApiResult::ToJson() const {
  std::ostringstream os;
  os << "{\"measurement\":\"";
  AppendJsonEscaped(os, query.measurement);
  os << "\",\"points\":";
  AppendPoints(os, series);
  os << '}';
  return os.str();
}

std::string ExportJson(const Database& db, std::string_view measurement,
                       const TagSet& filter) {
  std::ostringstream os;
  os << "{\"measurement\":\"";
  AppendJsonEscaped(os, measurement);
  os << "\",\"series\":[";
  bool first = true;
  for (const SeriesRef& ref : db.Query(measurement, filter)) {
    if (!first) os << ',';
    first = false;
    os << "{\"tags\":{";
    bool first_tag = true;
    for (const auto& [k, v] : ref.tags->entries()) {
      if (!first_tag) os << ',';
      first_tag = false;
      os << '"';
      AppendJsonEscaped(os, k);
      os << "\":\"";
      AppendJsonEscaped(os, v);
      os << '"';
    }
    os << "},\"points\":";
    AppendPoints(os, *ref.series);
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace manic::tsdb
