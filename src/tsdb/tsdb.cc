#include "tsdb/tsdb.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace manic::tsdb {

TagSet::TagSet(std::initializer_list<std::pair<std::string, std::string>> kvs) {
  for (const auto& [k, v] : kvs) Set(k, v);
}

void TagSet::Set(std::string key, std::string value) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, {std::move(key), std::move(value)});
  }
}

const std::string* TagSet::Get(std::string_view key) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& e, std::string_view k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) return &it->second;
  return nullptr;
}

bool TagSet::Matches(const TagSet& filter) const noexcept {
  for (const auto& [k, v] : filter.entries_) {
    const std::string* mine = Get(k);
    if (mine == nullptr || *mine != v) return false;
  }
  return true;
}

std::string TagSet::Canonical() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

Database::Series& Database::ResolveSeries(std::string_view measurement,
                                          const TagSet& tags) {
  auto& table = tables_[std::string(measurement)];
  const std::string key = tags.Canonical();
  auto it = table.find(key);
  if (it == table.end()) {
    it = table.emplace(key, Series{tags, {}, {}}).first;
  }
  return it->second;
}

void Database::Write(std::string_view measurement, const TagSet& tags,
                     TimeSec t, double value) {
  ResolveSeries(measurement, tags).data.Append(t, value);
}

void Database::WriteMissing(std::string_view measurement, const TagSet& tags,
                            TimeSec t) {
  ResolveSeries(measurement, tags).missing.Append(t, 0.0);
}

Database::SeriesHandle Database::OpenSeries(std::string_view measurement,
                                            const TagSet& tags) {
  return SeriesHandle(&ResolveSeries(measurement, tags));
}

void Database::Append(SeriesHandle handle, TimeSec t, double value) {
  if (handle.series_ != nullptr) handle.series_->data.Append(t, value);
}

void Database::AppendMissing(SeriesHandle handle, TimeSec t) {
  if (handle.series_ != nullptr) handle.series_->missing.Append(t, 0.0);
}

Database::CoverageStats Database::Coverage(std::string_view measurement,
                                           const TagSet& filter, TimeSec t0,
                                           TimeSec t1) const {
  CoverageStats stats;
  std::vector<TimeSec> present_times;
  const auto table = tables_.find(measurement);
  if (table == tables_.end()) {
    stats.longest_gap_s = t1 - t0;
    return stats;
  }
  for (const auto& [key, series] : table->second) {
    if (!series.tags.Matches(filter)) continue;
    for (std::size_t i = series.data.LowerBound(t0);
         i < series.data.size() && series.data[i].t < t1; ++i) {
      ++stats.present;
      present_times.push_back(series.data[i].t);
    }
    for (std::size_t i = series.missing.LowerBound(t0);
         i < series.missing.size() && series.missing[i].t < t1; ++i) {
      ++stats.missing;
    }
  }
  if (present_times.empty()) {
    stats.longest_gap_s = t1 - t0;
    return stats;
  }
  std::sort(present_times.begin(), present_times.end());
  TimeSec longest = present_times.front() - t0;  // leading gap
  for (std::size_t i = 1; i < present_times.size(); ++i) {
    longest = std::max(longest, present_times[i] - present_times[i - 1]);
  }
  longest = std::max(longest, (t1 - 1) - present_times.back());  // trailing
  stats.longest_gap_s = std::max<TimeSec>(longest, 0);
  return stats;
}

std::vector<SeriesRef> Database::Query(std::string_view measurement,
                                       const TagSet& filter) const {
  std::vector<SeriesRef> out;
  const auto table = tables_.find(measurement);
  if (table == tables_.end()) return out;
  for (const auto& [key, series] : table->second) {
    if (series.tags.Matches(filter)) {
      out.push_back({&series.tags, &series.data});
    }
  }
  return out;
}

stats::TimeSeries Database::QueryMerged(std::string_view measurement,
                                        const TagSet& filter, TimeSec t0,
                                        TimeSec t1) const {
  std::vector<stats::Point> pts;
  for (const SeriesRef& ref : Query(measurement, filter)) {
    const std::size_t lo = ref.series->LowerBound(t0);
    for (std::size_t i = lo; i < ref.series->size() && (*ref.series)[i].t < t1;
         ++i) {
      pts.push_back((*ref.series)[i]);
    }
  }
  std::sort(pts.begin(), pts.end(),
            [](const stats::Point& a, const stats::Point& b) { return a.t < b.t; });
  return stats::TimeSeries(std::move(pts));
}

stats::TimeSeries Database::QueryDownsampled(std::string_view measurement,
                                             const TagSet& filter, TimeSec t0,
                                             TimeSec t1, TimeSec bin_width,
                                             stats::BinAgg agg) const {
  return QueryMerged(measurement, filter, t0, t1).Bin(bin_width, agg, t0);
}

std::size_t Database::EnforceRetention(std::string_view measurement,
                                       TimeSec horizon) {
  const auto table = tables_.find(measurement);
  if (table == tables_.end()) return 0;
  std::size_t dropped = 0;
  for (auto& [key, series] : table->second) {
    if (series.data.empty()) continue;
    const TimeSec cutoff = series.data.back().t - horizon;
    const std::size_t keep_from = series.data.LowerBound(cutoff);
    if (keep_from == 0) continue;
    dropped += keep_from;
    stats::TimeSeries trimmed = series.data.Slice(cutoff, series.data.back().t + 1);
    series.data = std::move(trimmed);
  }
  return dropped;
}

std::size_t Database::SeriesCount(std::string_view measurement) const noexcept {
  const auto table = tables_.find(measurement);
  return table == tables_.end() ? 0 : table->second.size();
}

std::size_t Database::TotalPoints() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, table] : tables_) {
    for (const auto& [key, series] : table) n += series.data.size();
  }
  return n;
}

std::vector<std::string> Database::Measurements() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

std::string Database::ExportCsv(std::string_view measurement,
                                const TagSet& filter) const {
  std::ostringstream os;
  os << "measurement,tags,time,value\n";
  for (const SeriesRef& ref : Query(measurement, filter)) {
    const std::string tags = ref.tags->Canonical();
    for (const stats::Point& p : ref.series->points()) {
      os << measurement << ',' << tags << ',' << p.t << ',' << p.value << '\n';
    }
  }
  return os.str();
}

void Database::SaveLineProtocol(std::ostream& os) const {
  for (const auto& [name, table] : tables_) {
    for (const auto& [key, series] : table) {
      std::string prefix = name;
      for (const auto& [k, v] : series.tags.entries()) {
        prefix += ',';
        prefix += k;
        prefix += '=';
        prefix += v;
      }
      for (const stats::Point& p : series.data.points()) {
        os << prefix << " value=" << p.value << ' ' << p.t << '\n';
      }
    }
  }
}

std::size_t Database::LoadLineProtocol(std::istream& is,
                                       std::size_t* rejected) {
  std::size_t loaded = 0;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    // <measurement>[,k=v]* <space> value=<v> <space> <t>
    const auto first_space = line.find(' ');
    const auto second_space =
        first_space == std::string::npos ? std::string::npos
                                         : line.find(' ', first_space + 1);
    if (second_space == std::string::npos) {
      ++bad;
      continue;
    }
    const std::string_view head =
        std::string_view(line).substr(0, first_space);
    const std::string_view field = std::string_view(line).substr(
        first_space + 1, second_space - first_space - 1);
    const std::string_view stamp =
        std::string_view(line).substr(second_space + 1);

    if (!field.starts_with("value=")) {
      ++bad;
      continue;
    }
    double value = 0.0;
    const std::string_view num = field.substr(6);
    const auto [vp, vec] =
        std::from_chars(num.data(), num.data() + num.size(), value);
    TimeSec t = 0;
    const auto [tp, tec] =
        std::from_chars(stamp.data(), stamp.data() + stamp.size(), t);
    if (vec != std::errc{} || vp != num.data() + num.size() ||
        tec != std::errc{} || tp != stamp.data() + stamp.size()) {
      ++bad;
      continue;
    }

    const auto comma = head.find(',');
    const std::string measurement(head.substr(0, comma));
    if (measurement.empty()) {
      ++bad;
      continue;
    }
    TagSet tags;
    bool tags_ok = true;
    std::string_view rest =
        comma == std::string_view::npos ? std::string_view{}
                                        : head.substr(comma + 1);
    while (!rest.empty()) {
      const auto next = rest.find(',');
      const std::string_view kv = rest.substr(0, next);
      rest = next == std::string_view::npos ? std::string_view{}
                                            : rest.substr(next + 1);
      const auto eq = kv.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        tags_ok = false;
        break;
      }
      tags.Set(std::string(kv.substr(0, eq)), std::string(kv.substr(eq + 1)));
    }
    if (!tags_ok) {
      ++bad;
      continue;
    }
    try {
      Write(measurement, tags, t, value);
      ++loaded;
    } catch (const std::invalid_argument&) {
      ++bad;  // non-monotonic timestamp within a series
    }
  }
  if (rejected != nullptr) *rejected = bad;
  return loaded;
}

}  // namespace manic::tsdb
