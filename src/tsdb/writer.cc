#include "tsdb/writer.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace manic::tsdb {

void BufferedWriter::Append(std::string measurement, TagSet tags, TimeSec t,
                            double value) {
  Point p;
  p.measurement = std::move(measurement);
  p.canonical_tags = tags.Canonical();  // computed outside the lock
  p.tags = std::move(tags);
  p.t = t;
  p.value = value;
  runtime::MutexLock lock(mu_);
  buffer_.push_back(std::move(p));
}

std::size_t BufferedWriter::FlushTo(Database& db) {
  std::vector<Point> drained;
  {
    runtime::MutexLock lock(mu_);
    drained.swap(buffer_);
  }
  std::sort(drained.begin(), drained.end(), [](const Point& a, const Point& b) {
    return std::tie(a.measurement, a.canonical_tags, a.t, a.value) <
           std::tie(b.measurement, b.canonical_tags, b.t, b.value);
  });
  for (const Point& p : drained) {
    db.Write(p.measurement, p.tags, p.t, p.value);
  }
  return drained.size();
}

std::size_t BufferedWriter::PendingPoints() const {
  runtime::MutexLock lock(mu_);
  return buffer_.size();
}

}  // namespace manic::tsdb
