// A small tagged time-series database, standing in for the paper's InfluxDB
// backend (§3, Figure 1). Series are identified by a measurement name plus a
// set of key=value tags (e.g. measurement "tslp_rtt" tagged with vp, link,
// side, destination). Supports subset-matching queries over tags, time-range
// slicing, min/mean downsampling, retention, and CSV export (the Grafana
// front-end substitute is plain text output from the bench harnesses).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stats/timeseries.h"

namespace manic::tsdb {

using stats::TimeSec;

// Sorted key=value tag set. Keys are unique.
class TagSet {
 public:
  TagSet() = default;
  TagSet(std::initializer_list<std::pair<std::string, std::string>> kvs);

  void Set(std::string key, std::string value);
  const std::string* Get(std::string_view key) const noexcept;

  // True if every tag in `filter` is present with an equal value here.
  bool Matches(const TagSet& filter) const noexcept;

  // Canonical "k1=v1,k2=v2" encoding (keys sorted); usable as a map key.
  std::string Canonical() const;

  const std::vector<std::pair<std::string, std::string>>& entries() const noexcept {
    return entries_;
  }

  friend bool operator==(const TagSet&, const TagSet&) = default;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;  // sorted by key
};

struct SeriesRef {
  const TagSet* tags = nullptr;
  const stats::TimeSeries* series = nullptr;
};

// Not internally synchronized: queries hand out SeriesRef pointers that a
// concurrent Write could invalidate. Parallel producers append through
// BufferedWriter (writer.h), which drains here in canonical order on one
// thread.
class Database {
 private:
  struct Series;

 public:
  // Appends one point to the series (measurement, tags). Creates the series
  // on first write. Timestamps within one series must be non-decreasing.
  void Write(std::string_view measurement, const TagSet& tags, TimeSec t,
             double value);

  // ---- streaming append path ----------------------------------------------
  // The per-sample ingest path (src/serve) appends millions of points into a
  // handful of series; re-canonicalizing the tag set and re-walking two maps
  // per point would dominate. OpenSeries resolves (measurement, tags) once —
  // creating the series if needed — and hands back a handle whose appends
  // are O(1) amortized. Handles stay valid for the Database's lifetime
  // (series nodes are never erased; EnforceRetention only trims points).
  class SeriesHandle {
   public:
    SeriesHandle() = default;
    explicit operator bool() const noexcept { return series_ != nullptr; }

   private:
    friend class Database;
    explicit SeriesHandle(Series* series) : series_(series) {}
    Series* series_ = nullptr;
  };
  SeriesHandle OpenSeries(std::string_view measurement, const TagSet& tags);
  // Same timestamp contract as Write/WriteMissing: non-decreasing per series.
  void Append(SeriesHandle handle, TimeSec t, double value);
  void AppendMissing(SeriesHandle handle, TimeSec t);

  // Marks time t of the series as probed-but-unanswered: the collector was
  // alive and scheduled the measurement, but nothing came back. Gap markers
  // make "no data because we asked and got nothing" distinguishable from
  // "no data because telemetry was silently lost" (an unmarked hole), which
  // is what Coverage() quantifies. Markers live beside the data and are not
  // exported via CSV or line protocol (the real backend has no such row).
  void WriteMissing(std::string_view measurement, const TagSet& tags,
                    TimeSec t);

  // Coverage accounting over [t0, t1) for every series matching `filter`,
  // combined: how many points are present, how many probed slots came back
  // empty, and the longest interval with no present point (clamped to the
  // window edges; t1 - t0 when nothing is present).
  struct [[nodiscard]] CoverageStats {
    std::int64_t present = 0;
    std::int64_t missing = 0;
    TimeSec longest_gap_s = 0;

    double CoverageFrac() const noexcept {
      const std::int64_t total = present + missing;
      return total > 0 ? static_cast<double>(present) / static_cast<double>(total)
                       : 0.0;
    }
  };
  CoverageStats Coverage(std::string_view measurement, const TagSet& filter,
                         TimeSec t0, TimeSec t1) const;

  // All series of a measurement whose tags match `filter` (subset match).
  std::vector<SeriesRef> Query(std::string_view measurement,
                               const TagSet& filter = {}) const;

  // Concatenated points of all matching series restricted to [t0, t1),
  // re-sorted by time. Useful when several destinations probe one link.
  stats::TimeSeries QueryMerged(std::string_view measurement,
                                const TagSet& filter, TimeSec t0,
                                TimeSec t1) const;

  // Downsampled view of the merged matching data.
  stats::TimeSeries QueryDownsampled(std::string_view measurement,
                                     const TagSet& filter, TimeSec t0,
                                     TimeSec t1, TimeSec bin_width,
                                     stats::BinAgg agg) const;

  // Drops points older than `horizon` seconds before the newest point,
  // per series, for one measurement. Returns points dropped.
  std::size_t EnforceRetention(std::string_view measurement, TimeSec horizon);

  // Number of series stored for a measurement.
  std::size_t SeriesCount(std::string_view measurement) const noexcept;

  // Total points across all measurements.
  std::size_t TotalPoints() const noexcept;

  std::vector<std::string> Measurements() const;

  // CSV export: measurement,tags,time,value — one row per point.
  std::string ExportCsv(std::string_view measurement,
                        const TagSet& filter = {}) const;

  // Persistence in InfluxDB line protocol
  // (`measurement,k=v,k=v value=<v> <t>`), the format the deployed system's
  // backend speaks. Save writes every measurement; Load appends parsed
  // points (returns the number of points loaded; malformed lines are
  // skipped and counted in *rejected if provided).
  void SaveLineProtocol(std::ostream& os) const;
  std::size_t LoadLineProtocol(std::istream& is,
                               std::size_t* rejected = nullptr);

 private:
  struct Series {
    TagSet tags;
    stats::TimeSeries data;
    // Probed-but-unanswered slots (value unused, kept 0); same monotonic
    // timestamp contract as `data`.
    stats::TimeSeries missing;
  };
  Series& ResolveSeries(std::string_view measurement, const TagSet& tags);
  // measurement -> canonical tag string -> series
  std::map<std::string, std::map<std::string, Series>, std::less<>> tables_;
};

}  // namespace manic::tsdb
