// Special functions needed by the statistical tests: normal CDF, log-gamma,
// regularized incomplete beta (for the Student's t distribution), and the
// t-distribution CDF itself. Implemented from standard numerical recipes;
// accuracy is far beyond what the p<0.05 decisions in the paper require.
#pragma once

namespace manic::stats {

// Standard normal cumulative distribution function.
double NormalCdf(double z) noexcept;

// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x) noexcept;

// Regularized incomplete beta function I_x(a, b), x in [0,1].
double IncompleteBeta(double a, double b, double x) noexcept;

// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df) noexcept;

// Two-sided p-value for a t statistic with `df` degrees of freedom.
double StudentTTwoSidedP(double t, double df) noexcept;

// Critical value t* such that P(|T| > t*) = alpha (two-sided), found by
// bisection on the CDF.
double StudentTCritical(double df, double alpha) noexcept;

}  // namespace manic::stats
