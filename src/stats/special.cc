#include "stats/special.h"

#include <cmath>
#include <limits>

namespace manic::stats {

double NormalCdf(double z) noexcept {
  return 0.5 * std::erfc(-z / 1.4142135623730951);
}

double LogGamma(double x) noexcept {
  // Lanczos approximation, g=7, n=9.
  static constexpr double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(3.141592653589793 / std::sin(3.141592653589793 * x)) -
           LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + static_cast<double>(i));
  return 0.9189385332046727 + (x + 0.5) * std::log(t) - t + std::log(a);
}

namespace {

// Continued-fraction evaluation for the incomplete beta (Lentz's algorithm).
double BetaContinuedFraction(double a, double b, double x) noexcept {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) noexcept {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double x = df / (df + t * t);
  const double p = 0.5 * IncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double StudentTTwoSidedP(double t, double df) noexcept {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double x = df / (df + t * t);
  return IncompleteBeta(df / 2.0, 0.5, x);
}

double StudentTCritical(double df, double alpha) noexcept {
  double lo = 0.0;
  double hi = 1e3;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTTwoSidedP(mid, df) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace manic::stats
