#include "stats/rng.h"

namespace manic::stats {

std::uint32_t Rng::Binomial(std::uint32_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double variance = static_cast<double>(n) * p * (1.0 - p);
  if (variance > 30.0) {
    const double mean = static_cast<double>(n) * p;
    double draw = std::round(Normal(mean, std::sqrt(variance)));
    if (draw < 0.0) draw = 0.0;
    if (draw > static_cast<double>(n)) draw = static_cast<double>(n);
    return static_cast<std::uint32_t>(draw);
  }
  // Exact: count Bernoulli successes. n is small here (variance <= 30).
  std::uint32_t successes = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    successes += Bernoulli(p) ? 1u : 0u;
  }
  return successes;
}

}  // namespace manic::stats
