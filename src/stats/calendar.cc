#include "stats/calendar.h"

#include <array>

namespace manic::stats {

namespace {

// Month lengths from 2016-03 onward. Extended past the study window so that
// scenarios may simulate a little beyond Dec 2017; repeats a non-leap year
// pattern afterwards (fidelity beyond the window is irrelevant).
constexpr std::array<int, 34> kMonthDays = {
    31, 30, 31, 30, 31, 31, 30, 31, 30, 31,          // 2016 Mar-Dec
    31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31,  // 2017
    31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31,  // 2018
};

constexpr std::array<const char*, 12> kMonthNames = {
    "01", "02", "03", "04", "05", "06", "07", "08", "09", "10", "11", "12"};

}  // namespace

int DaysInStudyMonth(int month_index) noexcept {
  if (month_index < 0) return 0;
  if (month_index >= static_cast<int>(kMonthDays.size())) {
    month_index = (month_index - 10) % 12 + 10;  // repeat the non-leap pattern
  }
  return kMonthDays[static_cast<std::size_t>(month_index)];
}

std::int64_t StudyMonthStartDay(int month_index) noexcept {
  std::int64_t day = 0;
  for (int m = 0; m < month_index; ++m) day += DaysInStudyMonth(m);
  return day;
}

int StudyMonthOfDay(std::int64_t day) noexcept {
  if (day < 0) return -1;
  int m = 0;
  std::int64_t start = 0;
  while (true) {
    const std::int64_t len = DaysInStudyMonth(m);
    if (day < start + len) return m;
    start += len;
    ++m;
  }
}

std::string StudyMonthLabel(int month_index) {
  // month_index 0 => 2016-03.
  const int absolute = month_index + 2;  // months since 2016-01
  const int year = 2016 + absolute / 12;
  const int month = absolute % 12;  // 0 = January
  return std::to_string(year) + "-" +
         kMonthNames[static_cast<std::size_t>(month)];
}

std::int64_t StudyTotalDays() noexcept {
  return StudyMonthStartDay(kStudyMonths);
}

}  // namespace manic::stats
