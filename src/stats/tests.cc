#include "stats/tests.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/special.h"

namespace manic::stats {

TTestResult WelchTTest(std::span<const double> a, std::span<const double> b) {
  TTestResult r;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  if (a.size() < 2 || b.size() < 2) return r;
  const double ma = Mean(a);
  const double mb = Mean(b);
  const double va = Variance(a);
  const double vb = Variance(b);
  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    // Identical constant samples: no evidence of difference.
    r.valid = ma != mb;
    r.p_value = ma != mb ? 0.0 : 1.0;
    r.statistic = 0.0;
    r.df = na + nb - 2.0;
    return r;
  }
  r.statistic = (ma - mb) / std::sqrt(se2);
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  r.df = den > 0.0 ? num / den : na + nb - 2.0;
  r.p_value = StudentTTwoSidedP(r.statistic, r.df);
  r.valid = true;
  return r;
}

TTestResult StudentTTest(std::span<const double> a, std::span<const double> b) {
  TTestResult r;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  if (a.size() < 2 || b.size() < 2) return r;
  const double ma = Mean(a);
  const double mb = Mean(b);
  const double va = Variance(a);
  const double vb = Variance(b);
  const double df = na + nb - 2.0;
  const double pooled = ((na - 1.0) * va + (nb - 1.0) * vb) / df;
  const double se = std::sqrt(pooled * (1.0 / na + 1.0 / nb));
  if (se <= 0.0) {
    r.valid = ma != mb;
    r.p_value = ma != mb ? 0.0 : 1.0;
    r.df = df;
    return r;
  }
  r.statistic = (ma - mb) / se;
  r.df = df;
  r.p_value = StudentTTwoSidedP(r.statistic, r.df);
  r.valid = true;
  return r;
}

ProportionTestResult BinomialProportionTest(long long successes1,
                                            long long trials1,
                                            long long successes2,
                                            long long trials2) {
  ProportionTestResult r;
  if (trials1 <= 0 || trials2 <= 0) return r;
  const double n1 = static_cast<double>(trials1);
  const double n2 = static_cast<double>(trials2);
  r.p1 = static_cast<double>(successes1) / n1;
  r.p2 = static_cast<double>(successes2) / n2;
  const double pooled =
      static_cast<double>(successes1 + successes2) / (n1 + n2);
  const double se = std::sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2));
  if (se <= 0.0) {
    // Both proportions 0 or both 1: no detectable difference.
    r.p_value = 1.0;
    r.valid = true;
    return r;
  }
  r.statistic = (r.p1 - r.p2) / se;
  r.p_value = 2.0 * (1.0 - NormalCdf(std::fabs(r.statistic)));
  r.valid = true;
  return r;
}

double HuberWeight(double residual, double sigma, double p) noexcept {
  if (sigma <= 0.0) return 1.0;
  const double k = p * sigma;
  const double a = std::fabs(residual);
  if (a <= k) return 1.0;
  return k / a;
}

double HuberMean(std::span<const double> xs, double sigma, double p) {
  if (xs.empty()) return 0.0;
  double loc = Median(xs);
  for (int iter = 0; iter < 20; ++iter) {
    double wsum = 0.0;
    double acc = 0.0;
    for (double x : xs) {
      const double w = HuberWeight(x - loc, sigma, p);
      wsum += w;
      acc += w * x;
    }
    if (wsum <= 0.0) break;
    const double next = acc / wsum;
    if (std::fabs(next - loc) < 1e-12) {
      loc = next;
      break;
    }
    loc = next;
  }
  return loc;
}

}  // namespace manic::stats
