// Hypothesis tests used by the paper's methodology:
//  - Student's / Welch's t-test (§4.1 level-shift significance, §5.3 NDT
//    throughput comparison, Table 2),
//  - two-sample binomial proportion test (§5.1 loss-rate validation,
//    Table 1, requiring p < 0.05).
#pragma once

#include <span>

namespace manic::stats {

struct TTestResult {
  double statistic = 0.0;   // t statistic (can be negative)
  double df = 0.0;          // degrees of freedom
  double p_value = 1.0;     // two-sided
  bool valid = false;       // false when a sample is too small / degenerate
  bool Significant(double alpha = 0.05) const noexcept {
    return valid && p_value < alpha;
  }
};

// Welch's unequal-variance two-sample t-test (two-sided). The paper says
// "Student's t-test"; Welch is the robust default and reduces to Student
// when variances match. Requires >= 2 samples per side.
TTestResult WelchTTest(std::span<const double> a, std::span<const double> b);

// Classic pooled-variance Student's t-test (two-sided), kept for fidelity to
// the paper's wording and for the level-shift detector's threshold
// derivation.
TTestResult StudentTTest(std::span<const double> a, std::span<const double> b);

struct ProportionTestResult {
  double statistic = 0.0;  // z statistic
  double p_value = 1.0;    // two-sided
  double p1 = 0.0;         // observed proportion, sample 1
  double p2 = 0.0;         // observed proportion, sample 2
  bool valid = false;
  bool Significant(double alpha = 0.05) const noexcept {
    return valid && p_value < alpha;
  }
};

// Two-sample binomial proportion z-test: successes1/trials1 vs
// successes2/trials2, two-sided, pooled standard error.
ProportionTestResult BinomialProportionTest(long long successes1,
                                            long long trials1,
                                            long long successes2,
                                            long long trials2);

// Huber's weight function with tuning parameter p (in units of standard
// deviations): weight 1 inside [-p*sigma, p*sigma], downweighted
// proportionally outside. Used by the level-shift detector to tolerate
// outliers (§4.1, P=1 in deployment).
double HuberWeight(double residual, double sigma, double p) noexcept;

// Weighted mean with Huber weights relative to an initial location estimate,
// iterated to convergence (IRLS, few iterations suffice).
double HuberMean(std::span<const double> xs, double sigma, double p);

}  // namespace manic::stats
