// A simple time series: (unix-seconds, value) points in non-decreasing time
// order. Both congestion-inference methods operate on *minimum-per-bin*
// aggregations of raw TSLP series (§4.1, §4.2), so binning with a selectable
// aggregator is the workhorse here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace manic::stats {

using TimeSec = std::int64_t;

struct Point {
  TimeSec t = 0;
  double value = 0.0;
  friend bool operator==(const Point&, const Point&) = default;
};

enum class BinAgg { kMin, kMax, kMean, kCount, kSum };

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<Point> points);

  // Appends a point; time must be >= the last appended time.
  void Append(TimeSec t, double value);

  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  const Point& operator[](std::size_t i) const noexcept { return points_[i]; }
  std::span<const Point> points() const noexcept { return points_; }
  const Point& front() const noexcept { return points_.front(); }
  const Point& back() const noexcept { return points_.back(); }

  // All values, in time order.
  std::vector<double> Values() const;

  // Points with t in [t0, t1).
  TimeSeries Slice(TimeSec t0, TimeSec t1) const;

  // Index of the first point with t >= t0 (== size() if none).
  std::size_t LowerBound(TimeSec t0) const noexcept;

  // Aggregates points into fixed-width bins aligned to `origin`
  // (bin k covers [origin + k*width, origin + (k+1)*width)). Bins with no
  // points are omitted. The returned series timestamps each bin at its start.
  TimeSeries Bin(TimeSec width, BinAgg agg, TimeSec origin = 0) const;

  // Like Bin, but produces a dense vector over [t0, t1): one slot per bin,
  // nullopt where the bin is empty. Used by the autocorrelation method,
  // which needs positional (interval-of-day) alignment.
  std::vector<std::optional<double>> BinDense(TimeSec t0, TimeSec t1,
                                              TimeSec width, BinAgg agg) const;

  void Clear() noexcept { points_.clear(); }

 private:
  std::vector<Point> points_;
};

}  // namespace manic::stats
