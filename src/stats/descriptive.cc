#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace manic::stats {

double Mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) noexcept {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    ss += d * d;
  }
  return ss / static_cast<double>(n - 1);
}

double StdDev(std::span<const double> xs) noexcept {
  return std::sqrt(Variance(xs));
}

double Min(std::span<const double> xs) noexcept {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return m;
}

double Max(std::span<const double> xs) noexcept {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return m;
}

double Quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

double EmpiricalCdf::At(double v) const noexcept {
  if (values.empty()) return 0.0;
  const auto it = std::upper_bound(values.begin(), values.end(), v);
  return static_cast<double>(it - values.begin()) /
         static_cast<double>(values.size());
}

double EmpiricalCdf::Quantile(double q) const noexcept {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

EmpiricalCdf MakeCdf(std::span<const double> xs) {
  EmpiricalCdf cdf;
  cdf.values.assign(xs.begin(), xs.end());
  std::sort(cdf.values.begin(), cdf.values.end());
  return cdf;
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) noexcept {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = Mean(xs.subspan(0, n));
  const double my = Mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace manic::stats
