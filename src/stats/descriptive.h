// Descriptive statistics over spans of doubles: moments, order statistics,
// empirical CDFs. All functions are pure and allocation-free except where a
// sorted copy is unavoidable (quantiles on unsorted input).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace manic::stats {

double Mean(std::span<const double> xs) noexcept;

// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
double Variance(std::span<const double> xs) noexcept;

double StdDev(std::span<const double> xs) noexcept;

double Min(std::span<const double> xs) noexcept;
double Max(std::span<const double> xs) noexcept;

// Linear-interpolation quantile, q in [0,1]. Copies and sorts the input.
double Quantile(std::span<const double> xs, double q);

double Median(std::span<const double> xs);

// Empirical CDF evaluated over sorted unique sample values.
struct EmpiricalCdf {
  std::vector<double> values;  // sorted sample values
  // Fraction of samples <= v.
  double At(double v) const noexcept;
  // Value at the given quantile q in [0,1].
  double Quantile(double q) const noexcept;
  std::size_t size() const noexcept { return values.size(); }
};

EmpiricalCdf MakeCdf(std::span<const double> xs);

// Pearson correlation coefficient of two equal-length series; returns 0 when
// either side is constant or the series are shorter than 2.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) noexcept;

}  // namespace manic::stats
