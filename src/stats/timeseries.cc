#include "stats/timeseries.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace manic::stats {

TimeSeries::TimeSeries(std::vector<Point> points) : points_(std::move(points)) {
  assert(std::is_sorted(points_.begin(), points_.end(),
                        [](const Point& a, const Point& b) { return a.t < b.t; }));
}

void TimeSeries::Append(TimeSec t, double value) {
  if (!points_.empty() && t < points_.back().t) {
    throw std::invalid_argument("TimeSeries::Append: non-monotonic timestamp");
  }
  points_.push_back({t, value});
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const Point& p : points_) out.push_back(p.value);
  return out;
}

std::size_t TimeSeries::LowerBound(TimeSec t0) const noexcept {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t0,
      [](const Point& p, TimeSec t) { return p.t < t; });
  return static_cast<std::size_t>(it - points_.begin());
}

TimeSeries TimeSeries::Slice(TimeSec t0, TimeSec t1) const {
  TimeSeries out;
  const std::size_t lo = LowerBound(t0);
  for (std::size_t i = lo; i < points_.size() && points_[i].t < t1; ++i) {
    out.points_.push_back(points_[i]);
  }
  return out;
}

namespace {

struct BinState {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  void Add(double v) noexcept {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    sum += v;
    ++count;
  }
  double Result(BinAgg agg) const noexcept {
    switch (agg) {
      case BinAgg::kMin: return min;
      case BinAgg::kMax: return max;
      case BinAgg::kMean: return sum / static_cast<double>(count);
      case BinAgg::kCount: return static_cast<double>(count);
      case BinAgg::kSum: return sum;
    }
    return 0.0;
  }
};

TimeSec FloorDiv(TimeSec a, TimeSec b) noexcept {
  TimeSec q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

TimeSeries TimeSeries::Bin(TimeSec width, BinAgg agg, TimeSec origin) const {
  if (width <= 0) throw std::invalid_argument("TimeSeries::Bin: width <= 0");
  TimeSeries out;
  BinState state;
  TimeSec current_bin = 0;
  bool open = false;
  for (const Point& p : points_) {
    const TimeSec bin = FloorDiv(p.t - origin, width);
    if (open && bin != current_bin) {
      out.points_.push_back({origin + current_bin * width, state.Result(agg)});
      state = BinState{};
    }
    current_bin = bin;
    open = true;
    state.Add(p.value);
  }
  if (open) {
    out.points_.push_back({origin + current_bin * width, state.Result(agg)});
  }
  return out;
}

std::vector<std::optional<double>> TimeSeries::BinDense(TimeSec t0, TimeSec t1,
                                                        TimeSec width,
                                                        BinAgg agg) const {
  if (width <= 0) throw std::invalid_argument("BinDense: width <= 0");
  if (t1 <= t0) return {};
  const std::size_t nbins =
      static_cast<std::size_t>((t1 - t0 + width - 1) / width);
  std::vector<BinState> states(nbins);
  const std::size_t lo = LowerBound(t0);
  for (std::size_t i = lo; i < points_.size() && points_[i].t < t1; ++i) {
    const std::size_t bin = static_cast<std::size_t>((points_[i].t - t0) / width);
    states[bin].Add(points_[i].value);
  }
  std::vector<std::optional<double>> out(nbins);
  for (std::size_t i = 0; i < nbins; ++i) {
    if (states[i].count > 0) out[i] = states[i].Result(agg);
  }
  return out;
}

}  // namespace manic::stats
