// Deterministic random number generation for the simulator and workload
// generators. Every consumer takes an explicit seed so experiments are
// exactly reproducible run-to-run; nothing in the library reads wall-clock
// entropy.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace manic::stats {

// SplitMix64: tiny, fast, well-distributed 64-bit generator. Used both as a
// stream generator and as a stateless hash (see Rng::HashMix) so that
// per-entity noise (e.g. per-link jitter at time t) can be derived without
// storing per-entity generator state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  // Advances the stream and returns 64 uniform bits.
  std::uint64_t NextU64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t UniformInt(std::uint64_t n) noexcept {
    // Multiply-shift rejection-free mapping; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  // Standard normal via Box-Muller (one value per call; the pair's second
  // half is discarded to keep the generator stateless across call sites).
  double Normal(double mean = 0.0, double stddev = 1.0) noexcept {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  // Exponential with the given mean (mean > 0).
  double Exponential(double mean) noexcept {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  // Bernoulli draw.
  bool Bernoulli(double p) noexcept { return NextDouble() < p; }

  // Binomial(n, p) draw. Exact inversion for small n, normal approximation
  // for large n (n*p*(1-p) > 30) — adequate for loss-count sampling.
  std::uint32_t Binomial(std::uint32_t n, double p) noexcept;

  // Stateless mix of up to three keys into 64 uniform bits. Deterministic:
  // the same keys always produce the same bits regardless of stream state.
  static std::uint64_t HashMix(std::uint64_t a, std::uint64_t b = 0,
                               std::uint64_t c = 0) noexcept {
    std::uint64_t z = a * 0x9e3779b97f4a7c15ULL + b * 0xc2b2ae3d27d4eb4fULL +
                      c * 0x165667b19e3779f9ULL + 0x27d4eb2f165667c5ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // HashMix mapped to [0,1).
  static double HashToUnit(std::uint64_t a, std::uint64_t b = 0,
                           std::uint64_t c = 0) noexcept {
    return static_cast<double>(HashMix(a, b, c) >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_ = 0;
};

}  // namespace manic::stats
