// Study calendar. Simulated time is seconds since the study epoch,
// 2016-03-01 00:00:00 UTC (the start of the paper's measurement window).
// The calendar spans the 22 study months (Mar 2016 - Dec 2017) and beyond;
// helpers convert between seconds, days, months, local hours and weekdays.
//
// It lives in stats — not sim — because it is shared leaf infrastructure:
// the demand model (diurnal/weekly load) uses it on the simulator side, and
// day-link aggregation / Figure 9 (time-of-day histograms, FCC peak hours)
// use it on the analysis side. Analysis depending on the simulator for a
// calendar would break the layering contract that keeps the simulator
// substitutable (see tools/manic_lint/layers.txt).
#pragma once

#include <cstdint>
#include <string>

#include "stats/timeseries.h"

namespace manic::stats {

inline constexpr TimeSec kSecPerMin = 60;
inline constexpr TimeSec kSecPerHour = 3600;
inline constexpr TimeSec kSecPerDay = 86400;

// 2016-03-01 is a Tuesday.
inline constexpr int kEpochWeekday = 2;  // 0 = Sunday

// Day index (UTC) since epoch; negative times floor correctly.
constexpr std::int64_t DayOf(TimeSec t) noexcept {
  const std::int64_t d = t / kSecPerDay;
  return (t % kSecPerDay < 0) ? d - 1 : d;
}

constexpr TimeSec StartOfDay(std::int64_t day) noexcept {
  return day * kSecPerDay;
}

// Second-of-day in UTC, [0, 86400).
constexpr TimeSec SecondOfDayUtc(TimeSec t) noexcept {
  TimeSec s = t % kSecPerDay;
  return s < 0 ? s + kSecPerDay : s;
}

// Local fractional hour-of-day given a UTC offset in hours, in [0, 24).
constexpr double LocalHour(TimeSec t, int utc_offset_hours) noexcept {
  TimeSec s = (t + static_cast<TimeSec>(utc_offset_hours) * kSecPerHour) %
              kSecPerDay;
  if (s < 0) s += kSecPerDay;
  return static_cast<double>(s) / static_cast<double>(kSecPerHour);
}

// Weekday of the *local* day containing t (0 = Sunday ... 6 = Saturday).
constexpr int LocalWeekday(TimeSec t, int utc_offset_hours) noexcept {
  const std::int64_t day =
      DayOf(t + static_cast<TimeSec>(utc_offset_hours) * kSecPerHour);
  std::int64_t w = (day + kEpochWeekday) % 7;
  if (w < 0) w += 7;
  return static_cast<int>(w);
}

constexpr bool IsWeekend(int weekday) noexcept {
  return weekday == 0 || weekday == 6;
}

// Study months: index 0 = 2016-03 ... index 21 = 2017-12.
inline constexpr int kStudyMonths = 22;

// Days in study month m (0-based); Feb 2017 has 28 days.
int DaysInStudyMonth(int month_index) noexcept;

// First epoch-day of study month m.
std::int64_t StudyMonthStartDay(int month_index) noexcept;

// Study month containing epoch-day d, or -1 before the epoch /
// kStudyMonths-1 clamped? No: returns the true index, which may be
// >= kStudyMonths for days beyond Dec 2017 (callers slice as needed).
int StudyMonthOfDay(std::int64_t day) noexcept;

// "2016-03" style label.
std::string StudyMonthLabel(int month_index);

// Total days in the 22-month study window.
std::int64_t StudyTotalDays() noexcept;

}  // namespace manic::stats
