// The longitudinal study driver: operationalizes the full pipeline of
// Figure 1 over the 22-month window for every vantage point — bdrmap
// discovery, per-link TSLP series, rolling autocorrelation classification,
// multi-VP merging into day-link records — and scores the result against the
// simulator's ground truth (the "operator feedback" analogue, §5.4).
//
// TSLP series for the long window are produced by TslpSynthesizer, which
// evaluates the same demand/queue models the per-probe simulator uses but
// one 15-minute bin at a time (the equivalence is tested in
// test_driver.cc); the focused validation benches run the real per-probe
// TSLP scheduler instead.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>

#include "analysis/daylink.h"
#include "infer/autocorr.h"
#include "infer/data_quality.h"
#include "runtime/study_executor.h"
#include "scenario/us_broadband.h"
#include "sim/faults/fault_plan.h"

namespace manic::scenario {

// Synthesizes per-day near/far 15-minute minimum-RTT rows for one
// (VP, border link) pair directly from the link's demand model.
class TslpSynthesizer {
 public:
  struct Config {
    double base_missing_prob = 0.01;  // bins lost to probing gaps
    int samples_per_bin = 6;          // TSLP probes contributing a bin's min
    double jitter_ms = 0.25;          // spread of the per-bin minimum
    stats::TimeSec bin_width = 900;
  };

  TslpSynthesizer(sim::SimNetwork& net, topo::LinkId link,
                  double base_far_rtt_ms, double base_near_rtt_ms,
                  std::uint64_t noise_key, Config config);
  TslpSynthesizer(sim::SimNetwork& net, topo::LinkId link,
                  double base_far_rtt_ms, double base_near_rtt_ms,
                  std::uint64_t noise_key)
      : TslpSynthesizer(net, link, base_far_rtt_ms, base_near_rtt_ms,
                        noise_key, Config{}) {}
  // VP-aware variant: when the network carries a FaultHook, rounds where
  // this VP is down contribute nothing to a bin (a bin with no surviving
  // round is missing on both sides), and bins whose tsdb write the hook
  // drops vanish silently. The VP-less constructors keep the synthesizer
  // blind to VP-scoped faults (link faults still apply — they flow through
  // ObservedQueueDelayMs / ObservedLossProb). Clock skew is not modeled
  // here: the synthesizer works at bin granularity and plan validation
  // bounds |skew| well below the bin width; the per-probe TSLP scheduler
  // models it instead.
  TslpSynthesizer(sim::SimNetwork& net, topo::VpId vp, topo::LinkId link,
                  double base_far_rtt_ms, double base_near_rtt_ms,
                  std::uint64_t noise_key, Config config)
      : TslpSynthesizer(net, link, base_far_rtt_ms, base_near_rtt_ms,
                        noise_key, config) {
    vp_ = vp;
    vp_known_ = true;
  }
  TslpSynthesizer(sim::SimNetwork& net, topo::VpId vp, topo::LinkId link,
                  double base_far_rtt_ms, double base_near_rtt_ms,
                  std::uint64_t noise_key)
      : TslpSynthesizer(net, vp, link, base_far_rtt_ms, base_near_rtt_ms,
                        noise_key, Config{}) {}

  // Fills `far` / `near` (each intervals-per-day long) for epoch day `day`.
  void Day(std::int64_t day, std::vector<float>& far,
           std::vector<float>& near) const;

 private:
  sim::SimNetwork* net_ = nullptr;
  topo::LinkId link_ = 0;
  double base_far_ = 0.0;
  double base_near_ = 0.0;
  std::uint64_t noise_key_ = 0;
  Config config_;
  topo::VpId vp_ = 0;
  bool vp_known_ = false;
};

// A border link as one VP sees it, with the destination TSLP would probe and
// the congestion-free baseline RTTs — the shared starting point of every
// experiment harness.
struct DiscoveredLink {
  std::string vp_name;
  const InterLinkInfo* info = nullptr;
  double base_far_ms = 0.0;
  double base_near_ms = 0.0;
  topo::VpId vp = 0;
  int vp_utc_offset = 0;
  topo::Ipv4Addr far_addr;
  topo::Ipv4Addr dest;
  int far_ttl = 0;
  std::uint16_t flow = 0;
};

// Runs bdrmap from `vp` at time t and resolves the discovered borders against
// the world's interdomain link inventory (customer and tier-1 mesh links are
// dropped).
std::vector<DiscoveredLink> DiscoverVpLinks(UsBroadband& world, topo::VpId vp,
                                            stats::TimeSec t);

// Phase-and-progress notification from the driver. The driver itself never
// writes to stdout/stderr: callers that want live progress install a
// callback (always invoked from the calling thread, so a bench's own output
// and the runtime metrics report never interleave with worker output).
struct StudyProgress {
  const char* phase = "";   // "discover", "classify", "aggregate", "truth"
  std::size_t done = 0;     // units completed within the phase
  std::size_t total = 0;    // units in the phase
};
using StudyProgressFn = std::function<void(const StudyProgress&)>;

struct StudyOptions {
  int days = -1;          // default: the full 22-month window
  int warmup_days = 50;   // classification needs a full window first
  infer::AutocorrConfig autocorr;
  std::uint64_t seed = 99;
  // Restrict to N vantage points (0 = all); tests use a subset for speed.
  std::size_t max_vps = 0;
  // Visibility churn (§6: "the population of links varies, as our
  // visibility of interdomain links is dynamic"): this fraction of VP-link
  // pairs either appears late or disappears early in the study window,
  // deterministically per (seed, vp, link).
  double churn_fraction = 0.3;
  // Parallel execution (threads, shard granularity, metrics sink). The
  // default — threads = 1 — is the serial reference path; any thread count
  // produces bit-identical results (see README "Parallel execution").
  runtime::RuntimeOptions runtime;
  // Optional progress callback; null = silent.
  StudyProgressFn progress;
  // Deterministic fault schedule (null = fault-free run). The driver
  // installs a FaultInjector seeded from SeedTree(seed).Child("faults") for
  // the duration of the study, so a faulted run is a pure function of
  // (world, options) regardless of thread count. The plan must outlive the
  // RunLongitudinalStudy call.
  const sim::faults::FaultPlan* fault_plan = nullptr;
  // Shard checkpoint log (empty = none). A non-empty path forces the
  // sharded execution path (even at threads = 1) so every shard can be
  // saved/restored; a killed study resumes from the log byte-identically.
  std::string checkpoint_path;
  // Stall watchdog for the parallel phase (stall_timeout_s = 0 disables).
  // A non-zero timeout also forces the sharded path.
  runtime::WatchdogOptions watchdog;
  // Optional per-record sink, invoked (from the calling thread, in emission
  // order) for every day-link record as it enters the result table. The
  // serving plane's parity harness uses this to capture the batch pipeline's
  // exact verdict stream — DayLinkTable itself only keeps aggregates.
  std::function<void(const analysis::DayLinkRecord&)> on_day_link;
};

struct StudyResult {
  analysis::DayLinkTable day_links;
  // Fig 9 inputs: one histogram per Comcast VP plus the consolidated one
  // (in Pacific time, as in the paper's bottom panel).
  std::map<std::string, analysis::TimeOfDayHistogram> comcast_vp_hists;
  analysis::TimeOfDayHistogram comcast_consolidated;
  std::size_t vp_link_pairs = 0;
  std::size_t links_observed = 0;
  std::uint64_t probes_for_discovery = 0;
  // Link-population dynamics per access ISP: distinct links observed at any
  // point of the study vs. links still visible during the final study month
  // (the paper's "973 links since March 2016 / 345 in December 2017").
  std::map<topo::Asn, int> links_ever_by_access;
  std::map<topo::Asn, int> links_final_month_by_access;
  // Per-link data-quality verdict over the whole study window, folded from
  // the same synthesized rows the classifier consumed: coverage fractions
  // and longest gap across contributing VPs (gap = worst single VP's run of
  // missing far bins), day-level VP churn summed across VPs. Links that
  // never produced a post-warmup row are absent.
  std::map<topo::LinkId, infer::DataQuality> link_quality;
  // Day-link confusion matrix vs ground truth (>= 4% congested), the
  // operator-validation analogue.
  long long truth_tp = 0, truth_fp = 0, truth_fn = 0, truth_tn = 0;
  double TruthAccuracy() const noexcept {
    const long long total = truth_tp + truth_fp + truth_fn + truth_tn;
    return total == 0 ? 0.0
                      : static_cast<double>(truth_tp + truth_tn) /
                            static_cast<double>(total);
  }
};

StudyResult RunLongitudinalStudy(UsBroadband& world,
                                 const StudyOptions& options = {});

// Streams the exact per-day measurement rows the daily loop consumes —
// day-major, pair-minor, visibility churn and fault effects included, NaN
// marking probed-but-missing bins — without running any inference. This is
// the feed for the serving plane's replay/parity harness: re-submitting
// these rows as samples through the streaming daemon reproduces the batch
// study's verdicts exactly. Must run on a freshly built world (discovery
// mutates the network's RNG and path cache), with the same options as the
// batch run being mirrored.
using StudyStreamFn =
    std::function<void(topo::VpId vp, topo::LinkId link, std::int64_t day,
                       std::span<const float> far, std::span<const float> near)>;
void ExportStudyStream(UsBroadband& world, const StudyOptions& options,
                       const StudyStreamFn& fn);

}  // namespace manic::scenario
