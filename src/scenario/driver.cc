#include "scenario/driver.h"

#include <cmath>

#include "bdrmap/bdrmap.h"
#include "sim/sim_time.h"

namespace manic::scenario {

using sim::Direction;
using sim::kSecPerDay;
using sim::TimeSec;

TslpSynthesizer::TslpSynthesizer(sim::SimNetwork& net, topo::LinkId link,
                                 double base_far_rtt_ms,
                                 double base_near_rtt_ms,
                                 std::uint64_t noise_key, Config config)
    : net_(&net),
      link_(link),
      base_far_(base_far_rtt_ms),
      base_near_(base_near_rtt_ms),
      noise_key_(noise_key),
      config_(config) {}

void TslpSynthesizer::Day(std::int64_t day, std::vector<float>& far,
                          std::vector<float>& near) const {
  const int intervals = static_cast<int>(kSecPerDay / config_.bin_width);
  far.assign(static_cast<std::size_t>(intervals),
             std::numeric_limits<float>::quiet_NaN());
  near.assign(static_cast<std::size_t>(intervals),
              std::numeric_limits<float>::quiet_NaN());
  const TimeSec day_start = day * kSecPerDay;
  for (int s = 0; s < intervals; ++s) {
    const TimeSec t = day_start + s * config_.bin_width + config_.bin_width / 2;
    // Minimum of `samples_per_bin` jittered samples: approximated by a small
    // deterministic residual above the floor.
    const double jitter_far =
        config_.jitter_ms * stats::Rng::HashToUnit(noise_key_, t, 0xF) /
        config_.samples_per_bin;
    const double jitter_near =
        config_.jitter_ms * stats::Rng::HashToUnit(noise_key_, t, 0xE) /
        config_.samples_per_bin;
    // TSLP probes every 5 minutes and the bin keeps the *minimum*, so at
    // regime edges (queue ramping within the bin) the minimum of the
    // constituent rounds is what the real measurement records. Mirror that:
    // evaluate the queue at each 5-minute round inside the bin and keep the
    // smallest. The far-side reply rides the congested content->access queue.
    double queue = std::numeric_limits<double>::infinity();
    double p_all_lost = 1.0;
    const int rounds = std::max(1, static_cast<int>(config_.bin_width / 300));
    for (int k = 0; k < rounds; ++k) {
      const TimeSec tk = day_start + s * config_.bin_width + k * 300;
      queue = std::min(queue,
                       net_->ObservedQueueDelayMs(link_, Direction::kBtoA, tk));
      const double loss = net_->ObservedLossProb(link_, Direction::kBtoA, tk);
      p_all_lost *= std::pow(loss, config_.samples_per_bin / rounds);
    }
    if (stats::Rng::HashToUnit(noise_key_, t, 0xA) >
        config_.base_missing_prob + p_all_lost) {
      far[static_cast<std::size_t>(s)] =
          static_cast<float>(base_far_ + queue + jitter_far);
    }
    if (stats::Rng::HashToUnit(noise_key_, t, 0xB) >
        config_.base_missing_prob) {
      near[static_cast<std::size_t>(s)] =
          static_cast<float>(base_near_ + jitter_near);
    }
  }
}

std::vector<DiscoveredLink> DiscoverVpLinks(UsBroadband& world, topo::VpId vp,
                                            stats::TimeSec t) {
  std::vector<DiscoveredLink> out;
  topo::Topology& topo = *world.topo;
  sim::SimNetwork& net = *world.net;
  bdrmap::Bdrmap bdrmap(net, vp);
  const bdrmap::BdrmapResult borders = bdrmap.RunCycle(t);
  const topo::VantagePoint& v = topo.vp(vp);
  const int vp_tz = topo.router(v.first_hop).utc_offset_hours;
  for (const bdrmap::BorderLink& border : borders.links) {
    const auto iface = topo.IfaceByAddr(border.far_addr);
    if (!iface) continue;
    const topo::LinkId link = topo.iface(*iface).link;
    const InterLinkInfo* info = world.FindLink(link);
    if (info == nullptr) continue;  // customer / tier-1 mesh link
    if (!world.tcp_set.contains(info->tcp)) continue;
    if (border.dests.empty()) continue;
    const bdrmap::BorderDest& dest = border.dests.front();
    const auto far_base =
        net.ExpectProbe(vp, dest.dst, dest.far_ttl, sim::FlowId{dest.flow}, t,
                        /*include_queues=*/false);
    const auto near_base =
        net.ExpectProbe(vp, dest.dst, dest.far_ttl - 1, sim::FlowId{dest.flow},
                        t, /*include_queues=*/false);
    if (!far_base.reachable || !near_base.reachable) continue;
    out.push_back({vp, v.name, vp_tz, info, border.far_addr, dest.dst,
                   dest.flow, dest.far_ttl, far_base.rtt_ms,
                   near_base.rtt_ms});
  }
  return out;
}

StudyResult RunLongitudinalStudy(UsBroadband& world,
                                 const StudyOptions& options) {
  StudyResult result;
  sim::SimNetwork& net = *world.net;

  const int days =
      options.days > 0 ? options.days : static_cast<int>(sim::StudyTotalDays());
  const int warmup = options.warmup_days;
  const int intervals = static_cast<int>(kSecPerDay / options.autocorr.bin_width);

  // ---- discovery: bdrmap per VP --------------------------------------------
  struct VpLink {
    topo::VpId vp;
    std::string vp_name;
    int vp_utc_offset;
    const InterLinkInfo* info;
    infer::RollingAutocorr rolling;
    TslpSynthesizer synth;
    bool is_comcast;
    // Visibility window (epoch days) for this VP-link pair.
    std::int64_t visible_from;
    std::int64_t visible_until;
  };
  std::vector<VpLink> pairs;
  std::set<topo::LinkId> observed_links;

  std::vector<topo::VpId> vps = world.vps;
  if (options.max_vps > 0 && vps.size() > options.max_vps) {
    vps.resize(options.max_vps);
  }

  const TimeSec discovery_t =
      -static_cast<TimeSec>(warmup) * kSecPerDay + 9 * sim::kSecPerHour;
  for (const topo::VpId vp : vps) {
    for (const DiscoveredLink& dl : DiscoverVpLinks(world, vp, discovery_t)) {
      // Deterministic visibility churn, keyed per link so every VP loses or
      // gains the link together (routing changes move the link itself): a
      // slice of links appears late, another disappears early. Links with a
      // scheduled congestion regime stay visible — the study's interesting
      // links remained measurable in the deployment too, and the Table 4
      // calibration depends on them.
      std::int64_t from = -warmup;
      std::int64_t until = days;
      if (!dl.info->scheduled_congested) {
        const double h =
            stats::Rng::HashToUnit(options.seed, dl.info->link, 0xC1);
        if (h < options.churn_fraction / 3) {
          from = static_cast<std::int64_t>(
              days *
              stats::Rng::HashToUnit(options.seed ^ 1, dl.info->link, 0xC2) *
              0.6);
        } else if (h < options.churn_fraction) {
          until = static_cast<std::int64_t>(
              days * (0.3 + 0.6 * stats::Rng::HashToUnit(options.seed ^ 2,
                                                         dl.info->link,
                                                         0xC3)));
        }
      }
      pairs.push_back(
          {vp, dl.vp_name, dl.vp_utc_offset, dl.info,
           infer::RollingAutocorr(options.autocorr),
           TslpSynthesizer(net, dl.info->link, dl.base_far_ms, dl.base_near_ms,
                           stats::Rng::HashMix(options.seed, vp, dl.info->link)),
           world.topo->vp(vp).host_as == UsBroadband::kComcast, from, until});
      observed_links.insert(dl.info->link);
    }
  }
  result.vp_link_pairs = pairs.size();
  result.links_observed = observed_links.size();
  result.probes_for_discovery = net.ProbesSent();

  // ---- the daily loop --------------------------------------------------------
  std::vector<float> far_row, near_row;
  // Per link, per day: merged congestion fractions from asserting VPs.
  std::map<topo::LinkId, std::pair<double, int>> today;  // sum, contributors
  std::map<topo::LinkId, bool> today_observed;

  // Link-population bookkeeping (per access ISP).
  const std::int64_t final_month_start =
      days - sim::DaysInStudyMonth(sim::StudyMonthOfDay(days - 1));
  std::map<topo::LinkId, const InterLinkInfo*> seen_ever, seen_final;

  for (std::int64_t day = -warmup; day < days; ++day) {
    today.clear();
    today_observed.clear();
    for (VpLink& pair : pairs) {
      if (day < pair.visible_from || day >= pair.visible_until) continue;
      pair.synth.Day(day, far_row, near_row);
      pair.rolling.AddDay(far_row, near_row);
      if (day < 0 || !pair.rolling.WindowFull()) continue;
      today_observed[pair.info->link] = true;
      seen_ever.emplace(pair.info->link, pair.info);
      if (day >= final_month_start) {
        seen_final.emplace(pair.info->link, pair.info);
      }
      const infer::DayClassification cls = pair.rolling.Classify();
      if (cls.recurring) {
        auto& slot = today[pair.info->link];
        slot.first += cls.fraction;
        slot.second += 1;
      }
      // Fig 9 (Comcast, calendar year 2017): congested 15-minute intervals
      // by VP-local hour.
      if (pair.is_comcast && cls.recurring && cls.congested) {
        const int month = sim::StudyMonthOfDay(day);
        if (month >= 10 && month <= 21) {
          for (const int s : cls.congested_intervals) {
            const TimeSec t = day * kSecPerDay +
                              static_cast<TimeSec>(s) *
                                  options.autocorr.bin_width;
            const double local_hour = sim::LocalHour(t, pair.vp_utc_offset);
            const bool weekend =
                sim::IsWeekend(sim::LocalWeekday(t, pair.vp_utc_offset));
            result.comcast_vp_hists[pair.vp_name].Add(local_hour, weekend);
            // Consolidated panel in Pacific time.
            const double pt_hour = sim::LocalHour(t, -8);
            result.comcast_consolidated.Add(
                pt_hour, sim::IsWeekend(sim::LocalWeekday(t, -8)));
          }
        }
      }
    }
    if (day < 0) continue;

    for (const auto& [link, seen] : today_observed) {
      const InterLinkInfo* info = world.FindLink(link);
      const auto it = today.find(link);
      const double fraction =
          it == today.end() || it->second.second == 0
              ? 0.0
              : it->second.first / static_cast<double>(it->second.second);
      result.day_links.Add({day, link, info->access, info->tcp, fraction, true});

      // Ground-truth comparison at the day-link level (sampled at the
      // inference bin width; links without demand models are never truly
      // congested).
      bool truly_congested = false;
      if (info->scheduled_congested) {
        int congested_bins = 0;
        for (int s = 0; s < intervals; ++s) {
          const TimeSec t = day * kSecPerDay +
                            static_cast<TimeSec>(s) * options.autocorr.bin_width;
          if (net.MeanUtilization(link, Direction::kBtoA, t) >= 0.96) {
            ++congested_bins;
          }
        }
        truly_congested = static_cast<double>(congested_bins) / intervals >=
                          analysis::kDayLinkThreshold;
      }
      const bool inferred = fraction >= analysis::kDayLinkThreshold;
      if (truly_congested && inferred) ++result.truth_tp;
      if (truly_congested && !inferred) ++result.truth_fn;
      if (!truly_congested && inferred) ++result.truth_fp;
      if (!truly_congested && !inferred) ++result.truth_tn;
    }
  }
  for (const auto& [link, info] : seen_ever) {
    ++result.links_ever_by_access[info->access];
  }
  for (const auto& [link, info] : seen_final) {
    ++result.links_final_month_by_access[info->access];
  }
  return result;
}

}  // namespace manic::scenario
