#include "scenario/driver.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "bdrmap/bdrmap.h"
#include "infer/rolling.h"
#include "infer/streaming.h"
#include "runtime/seed_tree.h"
#include "sim/fault_hook.h"
#include "sim/faults/fault_injector.h"
#include "stats/calendar.h"

namespace manic::scenario {

using sim::Direction;
using stats::kSecPerDay;
using sim::TimeSec;

TslpSynthesizer::TslpSynthesizer(sim::SimNetwork& net, topo::LinkId link,
                                 double base_far_rtt_ms,
                                 double base_near_rtt_ms,
                                 std::uint64_t noise_key, Config config)
    : net_(&net),
      link_(link),
      base_far_(base_far_rtt_ms),
      base_near_(base_near_rtt_ms),
      noise_key_(noise_key),
      config_(config) {}

void TslpSynthesizer::Day(std::int64_t day, std::vector<float>& far,
                          std::vector<float>& near) const {
  const int intervals = static_cast<int>(kSecPerDay / config_.bin_width);
  far.assign(static_cast<std::size_t>(intervals),
             std::numeric_limits<float>::quiet_NaN());
  near.assign(static_cast<std::size_t>(intervals),
              std::numeric_limits<float>::quiet_NaN());
  const TimeSec day_start = day * kSecPerDay;
  // VP-scoped faults only apply when the synthesizer knows which VP it
  // stands in for; a null hook leaves every branch below untaken, so a
  // fault-free run is bit-identical to the pre-fault synthesizer.
  const sim::FaultHook* hook = vp_known_ ? net_->fault_hook() : nullptr;
  for (int s = 0; s < intervals; ++s) {
    const TimeSec t = day_start + s * config_.bin_width + config_.bin_width / 2;
    // Minimum of `samples_per_bin` jittered samples: approximated by a small
    // deterministic residual above the floor.
    const double jitter_far =
        config_.jitter_ms * stats::Rng::HashToUnit(noise_key_, t, 0xF) /
        config_.samples_per_bin;
    const double jitter_near =
        config_.jitter_ms * stats::Rng::HashToUnit(noise_key_, t, 0xE) /
        config_.samples_per_bin;
    // TSLP probes every 5 minutes and the bin keeps the *minimum*, so at
    // regime edges (queue ramping within the bin) the minimum of the
    // constituent rounds is what the real measurement records. Mirror that:
    // evaluate the queue at each 5-minute round inside the bin and keep the
    // smallest. The far-side reply rides the congested content->access queue.
    // Rounds where the VP is down send nothing: they contribute neither to
    // the bin minimum nor to the all-lost probability.
    double queue = std::numeric_limits<double>::infinity();
    double p_all_lost = 1.0;
    const int rounds = std::max(1, static_cast<int>(config_.bin_width / 300));
    int rounds_up = 0;
    for (int k = 0; k < rounds; ++k) {
      const TimeSec tk = day_start + s * config_.bin_width + k * 300;
      if (hook != nullptr && !hook->VpUpAt(vp_, tk)) continue;
      ++rounds_up;
      queue = std::min(queue,
                       net_->ObservedQueueDelayMs(link_, Direction::kBtoA, tk));
      const double loss = net_->ObservedLossProb(link_, Direction::kBtoA, tk);
      p_all_lost *= std::pow(loss, config_.samples_per_bin / rounds);
    }
    if (rounds_up == 0) continue;  // VP down for the whole bin: both missing
    if (stats::Rng::HashToUnit(noise_key_, t, 0xA) >
            config_.base_missing_prob + p_all_lost &&
        !(hook != nullptr &&
          hook->DropTsdbWriteAt(vp_, t,
                                stats::Rng::HashMix(noise_key_, 0xFA52)))) {
      far[static_cast<std::size_t>(s)] =
          static_cast<float>(base_far_ + queue + jitter_far);
    }
    if (stats::Rng::HashToUnit(noise_key_, t, 0xB) >
            config_.base_missing_prob &&
        !(hook != nullptr &&
          hook->DropTsdbWriteAt(vp_, t,
                                stats::Rng::HashMix(noise_key_, 0x4EA2)))) {
      near[static_cast<std::size_t>(s)] =
          static_cast<float>(base_near_ + jitter_near);
    }
  }
}

std::vector<DiscoveredLink> DiscoverVpLinks(UsBroadband& world, topo::VpId vp,
                                            stats::TimeSec t) {
  std::vector<DiscoveredLink> out;
  topo::Topology& topo = *world.topo;
  sim::SimNetwork& net = *world.net;
  bdrmap::Bdrmap bdrmap(net, vp);
  const bdrmap::BdrmapResult borders = bdrmap.RunCycle(t);
  const topo::VantagePoint& v = topo.vp(vp);
  const int vp_tz = topo.router(v.first_hop).utc_offset_hours;
  for (const bdrmap::BorderLink& border : borders.links) {
    const auto iface = topo.IfaceByAddr(border.far_addr);
    if (!iface) continue;
    const topo::LinkId link = topo.iface(*iface).link;
    const InterLinkInfo* info = world.FindLink(link);
    if (info == nullptr) continue;  // customer / tier-1 mesh link
    if (!world.tcp_set.contains(info->tcp)) continue;
    if (border.dests.empty()) continue;
    const bdrmap::BorderDest& dest = border.dests.front();
    const auto far_base =
        net.ExpectProbe(vp, dest.dst, dest.far_ttl, sim::FlowId{dest.flow}, t,
                        /*include_queues=*/false);
    const auto near_base =
        net.ExpectProbe(vp, dest.dst, dest.far_ttl - 1, sim::FlowId{dest.flow},
                        t, /*include_queues=*/false);
    if (!far_base.reachable || !near_base.reachable) continue;
    out.push_back({v.name, info, far_base.rtt_ms, near_base.rtt_ms, vp, vp_tz,
                   border.far_addr, dest.dst, dest.far_ttl, dest.flow});
  }
  return out;
}

namespace {

// A VP-link pair as the daily loop consumes it. `synth` only reads the
// network through const, stateless accessors, so many shards may evaluate
// their pairs concurrently once discovery (which does mutate the network)
// has finished.
struct VpLink {
  TslpSynthesizer synth;
  std::string vp_name;
  const InterLinkInfo* info = nullptr;
  // Visibility window (epoch days) for this VP-link pair.
  std::int64_t visible_from = 0;
  std::int64_t visible_until = 0;
  topo::VpId vp = 0;
  int vp_utc_offset = 0;
  bool is_comcast = false;
};

// The per-pair data-quality bookkeeping now lives in infer/streaming.h so
// the serving plane's incremental engine can share it; the driver keeps only
// the fold over pairs. Pairs that never produced a post-warmup row are
// skipped, so `link_quality` only covers measured links.
using QualityTally = infer::QualityTally;

void FoldLinkQuality(const std::vector<VpLink>& pairs,
                     const std::vector<QualityTally>& tallies, int days,
                     StudyResult& result) {
  std::map<topo::LinkId, infer::LinkQualityAccumulator> by_link;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const QualityTally& t = tallies[p];
    if (t.far_total == 0) continue;
    by_link[pairs[p].info->link].Add(t);
  }
  for (const auto& [link, acc] : by_link) {
    result.link_quality[link] = acc.Finish(days);
  }
}

// Discovery: bdrmap per VP, visibility churn, TSLP synthesizer setup. Runs
// serially (probing mutates the network's RNG and path cache); the noise
// seeds are derived from the root SeedTree by stable (vp, link) keys so the
// sharded phases never need the network's RNG.
std::vector<VpLink> DiscoverPairs(UsBroadband& world,
                                  const StudyOptions& options, int days,
                                  int warmup,
                                  std::set<topo::LinkId>& observed_links) {
  std::vector<VpLink> pairs;
  sim::SimNetwork& net = *world.net;
  const runtime::SeedTree seeds(options.seed);

  std::vector<topo::VpId> vps = world.vps;
  if (options.max_vps > 0 && vps.size() > options.max_vps) {
    vps.resize(options.max_vps);
  }

  const TimeSec discovery_t =
      -static_cast<TimeSec>(warmup) * kSecPerDay + 9 * stats::kSecPerHour;
  for (const topo::VpId vp : vps) {
    for (const DiscoveredLink& dl : DiscoverVpLinks(world, vp, discovery_t)) {
      // Deterministic visibility churn, keyed per link so every VP loses or
      // gains the link together (routing changes move the link itself): a
      // slice of links appears late, another disappears early. Links with a
      // scheduled congestion regime stay visible — the study's interesting
      // links remained measurable in the deployment too, and the Table 4
      // calibration depends on them.
      std::int64_t from = -warmup;
      std::int64_t until = days;
      if (!dl.info->scheduled_congested) {
        const double h = seeds.LeafUnit(dl.info->link, 0xC1);
        if (h < options.churn_fraction / 3) {
          from = static_cast<std::int64_t>(
              days *
              stats::Rng::HashToUnit(options.seed ^ 1, dl.info->link, 0xC2) *
              0.6);
        } else if (h < options.churn_fraction) {
          until = static_cast<std::int64_t>(
              days * (0.3 + 0.6 * stats::Rng::HashToUnit(options.seed ^ 2,
                                                         dl.info->link,
                                                         0xC3)));
        }
      }
      pairs.push_back(
          {TslpSynthesizer(net, vp, dl.info->link, dl.base_far_ms,
                           dl.base_near_ms, seeds.Leaf(vp, dl.info->link)),
           dl.vp_name, dl.info, from, until, vp, dl.vp_utc_offset,
           world.topo->vp(vp).host_as == UsBroadband::kComcast});
      // manic-lint: allow(layout: alloc-scale) -- discovery-time dedup set,
      observed_links.insert(dl.info->link);  // built once per campaign.
    }
  }
  return pairs;
}

// Fig 9 (Comcast, calendar year 2017): congested 15-minute intervals by
// VP-local hour, plus the consolidated panel in Pacific time. Eligibility is
// checked separately so callers only materialize a per-VP histogram map
// entry when the day actually contributes.
bool Fig9Eligible(const VpLink& pair, const infer::DayClassification& cls,
                  std::int64_t day) {
  if (!pair.is_comcast || !cls.recurring || !cls.congested) return false;
  const int month = stats::StudyMonthOfDay(day);
  return month >= 10 && month <= 21;
}

void AddFig9Intervals(const VpLink& pair, const infer::DayClassification& cls,
                      std::int64_t day, TimeSec bin_width,
                      analysis::TimeOfDayHistogram& vp_hist,
                      analysis::TimeOfDayHistogram& pacific_hist) {
  for (const int s : cls.congested_intervals) {
    const TimeSec t = day * kSecPerDay + static_cast<TimeSec>(s) * bin_width;
    vp_hist.Add(stats::LocalHour(t, pair.vp_utc_offset),
                stats::IsWeekend(stats::LocalWeekday(t, pair.vp_utc_offset)));
    pacific_hist.Add(stats::LocalHour(t, -8),
                     stats::IsWeekend(stats::LocalWeekday(t, -8)));
  }
}

// Ground truth for one (link, day), sampled at the inference bin width.
bool TrulyCongestedDay(const sim::SimNetwork& net, topo::LinkId link,
                       std::int64_t day, int intervals, TimeSec bin_width) {
  int congested_bins = 0;
  for (int s = 0; s < intervals; ++s) {
    const TimeSec t = day * kSecPerDay + static_cast<TimeSec>(s) * bin_width;
    if (net.MeanUtilization(link, Direction::kBtoA, t) >= 0.96) {
      ++congested_bins;
    }
  }
  return static_cast<double>(congested_bins) / intervals >=
         analysis::kDayLinkThreshold;
}

void Notify(const StudyOptions& options, const char* phase, std::size_t done,
            std::size_t total) {
  if (options.progress) options.progress({phase, done, total});
}

// ---- the serial reference path ---------------------------------------------
// Day-outer, pair-inner — kept verbatim as the arithmetic specification the
// sharded path must reproduce bit-for-bit (tested in test_runtime.cc).
void RunDailyLoopSerial(UsBroadband& world, const StudyOptions& options,
                        std::vector<VpLink>& pairs, int days, int warmup,
                        StudyResult& result) {
  sim::SimNetwork& net = *world.net;
  const int intervals =
      static_cast<int>(kSecPerDay / options.autocorr.bin_width);

  std::vector<infer::RollingAutocorr> rolling(
      pairs.size(), infer::RollingAutocorr(options.autocorr));
  std::vector<QualityTally> quality(pairs.size());
  std::vector<float> far_row, near_row;
  // Per link, per day: merged congestion fractions from asserting VPs.
  std::map<topo::LinkId, std::pair<double, int>> today;  // sum, contributors
  std::map<topo::LinkId, bool> today_observed;

  // Link-population bookkeeping (per access ISP).
  const std::int64_t final_month_start =
      days - stats::DaysInStudyMonth(stats::StudyMonthOfDay(days - 1));
  std::map<topo::LinkId, const InterLinkInfo*> seen_ever, seen_final;

  for (std::int64_t day = -warmup; day < days; ++day) {
    today.clear();
    today_observed.clear();
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      VpLink& pair = pairs[p];
      if (day < pair.visible_from || day >= pair.visible_until) continue;
      pair.synth.Day(day, far_row, near_row);
      rolling[p].AddDay(far_row, near_row);
      if (day >= 0) quality[p].AddDay(far_row, near_row);
      if (day < 0 || !rolling[p].WindowFull()) continue;
      today_observed[pair.info->link] = true;
      seen_ever.emplace(pair.info->link, pair.info);
      if (day >= final_month_start) {
        seen_final.emplace(pair.info->link, pair.info);
      }
      const infer::DayClassification cls = rolling[p].Classify();
      if (cls.recurring) {
        auto& slot = today[pair.info->link];
        slot.first += cls.fraction;
        slot.second += 1;
      }
      if (Fig9Eligible(pair, cls, day)) {
        AddFig9Intervals(pair, cls, day, options.autocorr.bin_width,
                         result.comcast_vp_hists[pair.vp_name],
                         result.comcast_consolidated);
      }
    }
    Notify(options, "classify", static_cast<std::size_t>(day + warmup) + 1,
           static_cast<std::size_t>(days + warmup));
    if (day < 0) continue;

    for (const auto& [link, seen] : today_observed) {
      const InterLinkInfo* info = world.FindLink(link);
      const auto it = today.find(link);
      const double fraction =
          it == today.end() || it->second.second == 0
              ? 0.0
              : it->second.first / static_cast<double>(it->second.second);
      const analysis::DayLinkRecord record{day,       link,     info->access,
                                           info->tcp, fraction, true};
      result.day_links.Add(record);
      if (options.on_day_link) options.on_day_link(record);

      // Ground-truth comparison at the day-link level (links without demand
      // models are never truly congested).
      const bool truly_congested =
          info->scheduled_congested &&
          TrulyCongestedDay(net, link, day, intervals,
                            options.autocorr.bin_width);
      const bool inferred = fraction >= analysis::kDayLinkThreshold;
      if (truly_congested && inferred) ++result.truth_tp;
      if (truly_congested && !inferred) ++result.truth_fn;
      if (!truly_congested && inferred) ++result.truth_fp;
      if (!truly_congested && !inferred) ++result.truth_tn;
    }
  }
  for (const auto& [link, info] : seen_ever) {
    ++result.links_ever_by_access[info->access];
  }
  for (const auto& [link, info] : seen_final) {
    ++result.links_final_month_by_access[info->access];
  }
  FoldLinkQuality(pairs, quality, days, result);
}

// ---- the sharded path -------------------------------------------------------
// Shard = one (VP, link) pair, optionally split into month-sized day chunks.
// Each shard synthesizes and classifies its own day range into a private
// buffer (replaying up to window_days - 1 preceding days to warm the rolling
// window, whose state is a pure function of its last window_days inputs);
// buffers are folded in (pair, chunk) key order, which reproduces the serial
// loop's floating-point accumulation order exactly.

struct DayOutcome {
  bool recurring = false;
  double fraction = 0.0;
};
struct PairOut {
  std::int64_t emit_start = 0;
  std::vector<DayOutcome> days;
  analysis::TimeOfDayHistogram vp_hist;
  analysis::TimeOfDayHistogram pacific_hist;
  QualityTally quality;
};

// Shard checkpoint blobs. Everything is integers or bit-cast doubles, so a
// restored PairOut is the same bytes the worker produced — resume equals
// rerun exactly. The version guard makes stale logs recompute, not crash.
constexpr std::uint64_t kShardBlobVersion = 1;

void SaveHist(runtime::BlobWriter& w,
              const analysis::TimeOfDayHistogram& hist) {
  for (const bool weekend : {false, true}) {
    for (int h = 0; h < 24; ++h) w.PutI64(hist.Count(h, weekend));
  }
}

bool RestoreHist(runtime::BlobReader& r, analysis::TimeOfDayHistogram& hist) {
  for (const bool weekend : {false, true}) {
    for (int h = 0; h < 24; ++h) {
      std::int64_t n = 0;
      if (!r.GetI64(&n)) return false;
      if (n != 0) hist.AddCount(h, weekend, n);
    }
  }
  return true;
}

std::string SavePairOut(const PairOut& out) {
  runtime::BlobWriter w;
  w.PutU64(kShardBlobVersion);
  w.PutI64(out.emit_start);
  w.PutU64(out.days.size());
  for (const DayOutcome& d : out.days) {
    w.PutU64(d.recurring ? 1 : 0);
    w.PutDouble(d.fraction);
  }
  SaveHist(w, out.vp_hist);
  SaveHist(w, out.pacific_hist);
  const QualityTally& q = out.quality;
  w.PutI64(q.far_present);
  w.PutI64(q.far_total);
  w.PutI64(q.near_present);
  w.PutI64(q.near_total);
  w.PutI64(q.prefix_gap);
  w.PutI64(q.suffix_gap);
  w.PutI64(q.max_gap);
  w.PutI64(q.days_observed);
  w.PutI64(q.churn);
  w.PutU64((q.any_bin ? 1u : 0u) | (q.has_days ? 2u : 0u) |
           (q.first_day_observed ? 4u : 0u) |
           (q.last_day_observed ? 8u : 0u));
  return w.Take();
}

bool RestorePairOut(const std::string& blob, PairOut& out) {
  runtime::BlobReader r(blob);
  std::uint64_t version = 0;
  if (!r.GetU64(&version) || version != kShardBlobVersion) return false;
  PairOut restored;
  if (!r.GetI64(&restored.emit_start)) return false;
  std::uint64_t n_days = 0;
  if (!r.GetU64(&n_days) || n_days > (1u << 24)) return false;
  restored.days.reserve(static_cast<std::size_t>(n_days));
  for (std::uint64_t i = 0; i < n_days; ++i) {
    std::uint64_t recurring = 0;
    DayOutcome d;
    if (!r.GetU64(&recurring) || !r.GetDouble(&d.fraction)) return false;
    d.recurring = recurring != 0;
    restored.days.push_back(d);
  }
  if (!RestoreHist(r, restored.vp_hist)) return false;
  if (!RestoreHist(r, restored.pacific_hist)) return false;
  QualityTally& q = restored.quality;
  std::uint64_t flags = 0;
  if (!r.GetI64(&q.far_present) || !r.GetI64(&q.far_total) ||
      !r.GetI64(&q.near_present) || !r.GetI64(&q.near_total) ||
      !r.GetI64(&q.prefix_gap) || !r.GetI64(&q.suffix_gap) ||
      !r.GetI64(&q.max_gap) || !r.GetI64(&q.days_observed) ||
      !r.GetI64(&q.churn) || !r.GetU64(&flags) || !r.AtEnd()) {
    return false;
  }
  q.any_bin = (flags & 1u) != 0;
  q.has_days = (flags & 2u) != 0;
  q.first_day_observed = (flags & 4u) != 0;
  q.last_day_observed = (flags & 8u) != 0;
  out = std::move(restored);
  return true;
}

void RunDailyLoopSharded(UsBroadband& world, const StudyOptions& options,
                         const std::vector<VpLink>& pairs, int days,
                         runtime::Metrics& metrics, StudyResult& result) {
  sim::SimNetwork& net = *world.net;
  const int intervals =
      static_cast<int>(kSecPerDay / options.autocorr.bin_width);
  const std::int64_t final_month_start =
      days - stats::DaysInStudyMonth(stats::StudyMonthOfDay(days - 1));

  runtime::ThreadPool pool(options.runtime.ResolvedThreads(), &metrics);
  runtime::StudyExecutor executor(pool, &metrics);

  // ---- phase: synthesize + classify, one shard per (pair, month chunk) ----
  std::vector<PairOut> merged(pairs.size());
  {
    auto timer = metrics.Phase("classify");
    const std::int64_t chunk_days =
        options.runtime.months_per_shard > 0
            ? static_cast<std::int64_t>(options.runtime.months_per_shard) * 30
            : std::numeric_limits<std::int64_t>::max();

    std::vector<runtime::StudyExecutor::Shard> shards;
    std::vector<std::unique_ptr<PairOut>> outputs;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const VpLink& pair = pairs[p];
      const std::int64_t begin = pair.visible_from;
      const std::int64_t end =
          std::min<std::int64_t>(pair.visible_until, days);
      std::int64_t c0 = begin;
      for (std::uint64_t chunk = 0; c0 < end; ++chunk) {
        const std::int64_t c1 =
            c0 > end - chunk_days ? end : c0 + chunk_days;  // overflow-safe
        auto out = std::make_unique<PairOut>();
        PairOut* buffer = out.get();
        outputs.push_back(std::move(out));
        shards.push_back(runtime::StudyExecutor::Shard{
            (static_cast<std::uint64_t>(p) << 16) | chunk,
            [&options, &pair, buffer, c0, c1] {
              infer::RollingAutocorr rolling(options.autocorr);
              std::vector<float> far_row, near_row;
              const std::int64_t replay_from = std::max(
                  pair.visible_from,
                  c0 - static_cast<std::int64_t>(
                           options.autocorr.window_days - 1));
              for (std::int64_t day = replay_from; day < c1; ++day) {
                pair.synth.Day(day, far_row, near_row);
                rolling.AddDay(far_row, near_row);
                if (day >= c0 && day >= 0) {
                  buffer->quality.AddDay(far_row, near_row);
                }
                if (day < c0 || day < 0 || !rolling.WindowFull()) continue;
                if (buffer->days.empty()) buffer->emit_start = day;
                const infer::DayClassification cls = rolling.Classify();
                buffer->days.push_back(
                    {cls.recurring, cls.recurring ? cls.fraction : 0.0});
                if (Fig9Eligible(pair, cls, day)) {
                  AddFig9Intervals(pair, cls, day, options.autocorr.bin_width,
                                   buffer->vp_hist, buffer->pacific_hist);
                }
              }
            },
            [&merged, p, buffer] {
              PairOut& dst = merged[p];
              if (dst.days.empty()) dst.emit_start = buffer->emit_start;
              dst.days.insert(dst.days.end(), buffer->days.begin(),
                              buffer->days.end());
              dst.vp_hist.Merge(buffer->vp_hist);
              dst.pacific_hist.Merge(buffer->pacific_hist);
              dst.quality.Append(buffer->quality);
            },
            [buffer] { return SavePairOut(*buffer); },
            [buffer](const std::string& blob) {
              return RestorePairOut(blob, *buffer);
            }});
        c0 = c1;
      }
    }
    std::optional<runtime::CheckpointLog> checkpoint;
    if (!options.checkpoint_path.empty()) {
      checkpoint.emplace(options.checkpoint_path);
    }
    executor.Execute(
        shards,
        [&](std::size_t done, std::size_t total) {
          Notify(options, "classify", done, total);
        },
        checkpoint.has_value() ? &*checkpoint : nullptr, options.watchdog);
  }

  // ---- phase: aggregate (serial, canonical order) --------------------------
  // Day-outer, pair-inner, link-sorted emission: the exact order of the
  // serial reference loop, so every floating-point sum associates the same
  // way and DayLinkTable ingests records identically.
  struct TruthTask {
    std::int64_t day = 0;
    topo::LinkId link = 0;
    double fraction = 0.0;
  };
  std::vector<TruthTask> truth_tasks;
  {
    auto timer = metrics.Phase("aggregate");
    std::map<topo::LinkId, std::pair<double, int>> today;
    std::map<topo::LinkId, bool> today_observed;
    std::map<topo::LinkId, const InterLinkInfo*> seen_ever, seen_final;
    for (std::int64_t day = 0; day < days; ++day) {
      today.clear();
      today_observed.clear();
      for (std::size_t p = 0; p < pairs.size(); ++p) {
        const PairOut& series = merged[p];
        const std::int64_t idx = day - series.emit_start;
        if (series.days.empty() || idx < 0 ||
            idx >= static_cast<std::int64_t>(series.days.size())) {
          continue;
        }
        const VpLink& pair = pairs[p];
        today_observed[pair.info->link] = true;
        seen_ever.emplace(pair.info->link, pair.info);
        if (day >= final_month_start) {
          seen_final.emplace(pair.info->link, pair.info);
        }
        const DayOutcome& outcome =
            series.days[static_cast<std::size_t>(idx)];
        if (outcome.recurring) {
          auto& slot = today[pair.info->link];
          slot.first += outcome.fraction;
          slot.second += 1;
        }
      }
      for (const auto& [link, seen] : today_observed) {
        const InterLinkInfo* info = world.FindLink(link);
        const auto it = today.find(link);
        const double fraction =
            it == today.end() || it->second.second == 0
                ? 0.0
                : it->second.first / static_cast<double>(it->second.second);
        const analysis::DayLinkRecord record{day,       link,     info->access,
                                             info->tcp, fraction, true};
        result.day_links.Add(record);
        if (options.on_day_link) options.on_day_link(record);
        if (info->scheduled_congested) {
          truth_tasks.push_back({day, link, fraction});
        } else {
          // Links without a demand model are never truly congested.
          if (fraction >= analysis::kDayLinkThreshold) {
            ++result.truth_fp;
          } else {
            ++result.truth_tn;
          }
        }
      }
      Notify(options, "aggregate", static_cast<std::size_t>(day) + 1,
             static_cast<std::size_t>(days));
    }
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const PairOut& series = merged[p];
      if (series.vp_hist.Total(false) + series.vp_hist.Total(true) > 0) {
        result.comcast_vp_hists[pairs[p].vp_name].Merge(series.vp_hist);
      }
      result.comcast_consolidated.Merge(series.pacific_hist);
    }
    for (const auto& [link, info] : seen_ever) {
      ++result.links_ever_by_access[info->access];
    }
    for (const auto& [link, info] : seen_final) {
      ++result.links_final_month_by_access[info->access];
    }
    std::vector<QualityTally> tallies(pairs.size());
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      tallies[p] = merged[p].quality;
    }
    FoldLinkQuality(pairs, tallies, days, result);
  }

  // ---- phase: ground truth (parallel; integer tallies are order-free) ------
  {
    auto timer = metrics.Phase("truth");
    std::atomic<long long> tp{0}, fp{0}, fn{0}, tn{0};
    pool.ParallelFor(
        truth_tasks.size(),
        [&](std::size_t i) {
          const TruthTask& task = truth_tasks[i];
          const bool truly =
              TrulyCongestedDay(net, task.link, task.day, intervals,
                                options.autocorr.bin_width);
          const bool inferred = task.fraction >= analysis::kDayLinkThreshold;
          if (truly && inferred) tp.fetch_add(1, std::memory_order_relaxed);
          if (truly && !inferred) fn.fetch_add(1, std::memory_order_relaxed);
          if (!truly && inferred) fp.fetch_add(1, std::memory_order_relaxed);
          if (!truly && !inferred) tn.fetch_add(1, std::memory_order_relaxed);
        },
        /*grain=*/16);
    result.truth_tp += tp.load(std::memory_order_relaxed);
    result.truth_fp += fp.load(std::memory_order_relaxed);
    result.truth_fn += fn.load(std::memory_order_relaxed);
    result.truth_tn += tn.load(std::memory_order_relaxed);
    Notify(options, "truth", truth_tasks.size(), truth_tasks.size());
  }
}

}  // namespace

StudyResult RunLongitudinalStudy(UsBroadband& world,
                                 const StudyOptions& options) {
  StudyResult result;
  runtime::Metrics scratch_metrics;
  runtime::Metrics& metrics = options.runtime.metrics != nullptr
                                  ? *options.runtime.metrics
                                  : scratch_metrics;
  const int threads = options.runtime.ResolvedThreads();
  metrics.SetThreads(threads);

  const int days =
      options.days > 0 ? options.days : static_cast<int>(stats::StudyTotalDays());
  const int warmup = options.warmup_days;

  // Install the fault hook for the whole run (discovery included: a plan
  // scheduling events before day 0 degrades bdrmap too). The injector's
  // queries are pure functions of (plan, seed, arguments), so the faulted
  // study stays bit-identical at any thread count.
  std::optional<sim::faults::FaultInjector> injector;
  if (options.fault_plan != nullptr) {
    injector.emplace(*options.fault_plan,
                     runtime::SeedTree(options.seed).Child("faults"));
    world.net->SetFaultHook(&*injector);
  }

  std::set<topo::LinkId> observed_links;
  std::vector<VpLink> pairs;
  {
    auto timer = metrics.Phase("discover");
    pairs = DiscoverPairs(world, options, days, warmup, observed_links);
    Notify(options, "discover", pairs.size(), pairs.size());
  }
  result.vp_link_pairs = pairs.size();
  result.links_observed = observed_links.size();
  result.probes_for_discovery = world.net->ProbesSent();

  // Serial reference path only when nothing needs the shard machinery:
  // checkpointing and the watchdog both live in the executor, so either one
  // routes through the sharded path even at one thread (still bit-identical
  // — that equivalence is what test_runtime.cc pins).
  const bool serial = threads <= 1 && options.checkpoint_path.empty() &&
                      options.watchdog.stall_timeout_s <= 0.0;
  if (serial) {
    auto timer = metrics.Phase("classify");
    RunDailyLoopSerial(world, options, pairs, days, warmup, result);
  } else {
    RunDailyLoopSharded(world, options, pairs, days, metrics, result);
  }
  if (injector.has_value()) world.net->SetFaultHook(nullptr);
  return result;
}

void ExportStudyStream(UsBroadband& world, const StudyOptions& options,
                       const StudyStreamFn& fn) {
  const int days =
      options.days > 0 ? options.days : static_cast<int>(stats::StudyTotalDays());
  const int warmup = options.warmup_days;

  // Same fault installation as RunLongitudinalStudy, so the exported rows
  // carry identical fault effects (discovery degradation included).
  std::optional<sim::faults::FaultInjector> injector;
  if (options.fault_plan != nullptr) {
    injector.emplace(*options.fault_plan,
                     runtime::SeedTree(options.seed).Child("faults"));
    world.net->SetFaultHook(&*injector);
  }

  std::set<topo::LinkId> observed_links;
  std::vector<VpLink> pairs =
      DiscoverPairs(world, options, days, warmup, observed_links);

  // Day-major, pair-minor: the daily loop's exact consumption order, so a
  // stream consumer sees day boundaries the way the batch loop does.
  std::vector<float> far_row, near_row;
  for (std::int64_t day = -warmup; day < days; ++day) {
    for (const VpLink& pair : pairs) {
      if (day < pair.visible_from || day >= pair.visible_until) continue;
      pair.synth.Day(day, far_row, near_row);
      fn(pair.vp, pair.info->link, day, far_row, near_row);
    }
  }
  if (injector.has_value()) world.net->SetFaultHook(nullptr);
}

}  // namespace manic::scenario
