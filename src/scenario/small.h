// Small, fully-specified scenarios used by unit/integration tests, the
// examples, and the focused validation benches: one access network hosting a
// VP, one content provider peered over parallel links, one transit provider,
// and a stub customer AS. The content->access direction of the first peering
// link carries an evening congestion regime.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/network.h"

namespace manic::scenario {

using topo::Asn;
using topo::LinkId;
using topo::RouterId;
using topo::VpId;

struct SmallScenario {
  std::unique_ptr<topo::Topology> topo;
  std::unique_ptr<sim::SimNetwork> net;

  // ASNs
  static constexpr Asn kAccess = 100;
  static constexpr Asn kContent = 200;
  static constexpr Asn kTransit = 300;
  static constexpr Asn kStubCustomer = 400;
  static constexpr Asn kAccessSibling = 101;  // sibling of the host AS

  VpId vp = 0;
  RouterId access_nyc = 0, access_lax = 0, access_core = 0;
  RouterId content_nyc = 0, content_lax = 0;
  RouterId transit_r = 0;
  LinkId peering_nyc = 0;   // access<->content in NYC (congested regime)
  LinkId peering_lax = 0;   // access<->content in LAX (clean)
  LinkId transit_access = 0;
  LinkId transit_content = 0;
};

struct SmallScenarioOptions {
  std::uint64_t seed = 42;
  // Peak utilization of the content->access direction of peering_nyc.
  double congested_peak_utilization = 1.3;
  // Days (from epoch) the regime is active; default: always.
  std::int64_t regime_start_day = 0;
  std::int64_t regime_end_day = 100000;
  // Address the interdomain links from the access side (the hard
  // border-mapping case) or the content side.
  bool number_links_from_access = true;
  double queue_buffer_ms = 45.0;
};

SmallScenario MakeSmallScenario(const SmallScenarioOptions& options = {});

}  // namespace manic::scenario
