#include "scenario/small.h"

#include "topo/ipv4.h"

namespace manic::scenario {

using topo::Ipv4Addr;
using topo::Prefix;

namespace {

Prefix P(std::uint8_t a, std::uint8_t b, int len) {
  return Prefix(Ipv4Addr(a, b, 0, 0), len);
}

}  // namespace

SmallScenario MakeSmallScenario(const SmallScenarioOptions& options) {
  SmallScenario s;
  s.topo = std::make_unique<topo::Topology>();
  topo::Topology& t = *s.topo;

  // --- ASes, address space (infrastructure pools are announced too, as in
  // the real Internet, so traceroute hops are annotatable) ----------------
  t.AddAs(SmallScenario::kAccess, "AccessNet");
  t.AddAs(SmallScenario::kAccessSibling, "AccessNet-East");
  t.AddAs(SmallScenario::kContent, "ContentCo");
  t.AddAs(SmallScenario::kTransit, "TransitCo");
  t.AddAs(SmallScenario::kStubCustomer, "StubLeaf");
  const topo::Asn kCdn = 500;
  t.AddAs(kCdn, "CdnAtIx");
  const topo::Asn kVideoCdn = 600;  // peers only at LAX (successor diversity)
  t.AddAs(kVideoCdn, "VideoCdn");

  auto give_space = [&](Asn asn, std::uint8_t net, std::uint8_t infra) {
    t.Announce(asn, P(10, net, 16));
    t.AddInfrastructure(asn, P(172, infra, 16));
    t.Announce(asn, P(172, infra, 16));
  };
  give_space(SmallScenario::kAccess, 100, 16);
  give_space(SmallScenario::kAccessSibling, 101, 21);
  give_space(SmallScenario::kContent, 200, 17);
  give_space(SmallScenario::kTransit, 30, 18);
  give_space(SmallScenario::kStubCustomer, 40, 19);
  give_space(kCdn, 50, 22);
  give_space(kVideoCdn, 60, 23);

  // The sibling shares AccessNet's organization (manually curated, §3.2).
  t.orgs.Override(SmallScenario::kAccessSibling, "AccessNet");

  // --- relationships -------------------------------------------------------
  t.relationships.SetProviderCustomer(SmallScenario::kTransit,
                                      SmallScenario::kAccess);
  t.relationships.SetProviderCustomer(SmallScenario::kTransit,
                                      SmallScenario::kContent);
  t.relationships.SetPeers(SmallScenario::kAccess, SmallScenario::kContent);
  t.relationships.SetProviderCustomer(SmallScenario::kContent,
                                      SmallScenario::kStubCustomer);
  t.relationships.SetProviderCustomer(SmallScenario::kTransit,
                                      SmallScenario::kStubCustomer);
  t.relationships.SetPeers(SmallScenario::kAccess, kCdn);
  t.relationships.SetProviderCustomer(SmallScenario::kTransit, kCdn);
  t.relationships.SetPeers(SmallScenario::kAccess, kVideoCdn);
  t.relationships.SetProviderCustomer(SmallScenario::kTransit, kVideoCdn);
  t.relationships.SetProviderCustomer(SmallScenario::kAccess,
                                      SmallScenario::kAccessSibling);

  // --- routers --------------------------------------------------------------
  s.access_core = t.AddRouter(SmallScenario::kAccess, "acc-core", "nyc", -5);
  s.access_nyc = t.AddRouter(SmallScenario::kAccess, "acc-br-nyc", "nyc", -5);
  s.access_lax = t.AddRouter(SmallScenario::kAccess, "acc-br-lax", "lax", -8);
  s.content_nyc = t.AddRouter(SmallScenario::kContent, "cdn-nyc", "nyc", -5);
  s.content_lax = t.AddRouter(SmallScenario::kContent, "cdn-lax", "lax", -8);
  s.transit_r = t.AddRouter(SmallScenario::kTransit, "tr-nyc", "nyc", -5);
  const RouterId sibling_r =
      t.AddRouter(SmallScenario::kAccessSibling, "sib-bos", "bos", -5);
  const RouterId stub_r =
      t.AddRouter(SmallScenario::kStubCustomer, "stub-1", "chi", -6);
  const RouterId cdn_r = t.AddRouter(kCdn, "cdnix-1", "nyc", -5);
  const RouterId vcdn_r = t.AddRouter(kVideoCdn, "vcdn-lax", "lax", -8);

  t.ConnectIntra(s.access_core, s.access_nyc, 0.4);
  t.ConnectIntra(s.access_core, s.access_lax, 12.0);
  t.ConnectIntra(s.content_nyc, s.content_lax, 12.0);

  const std::optional<Asn> addr_from =
      options.number_links_from_access
          ? std::optional<Asn>(SmallScenario::kAccess)
          : std::optional<Asn>(SmallScenario::kContent);
  s.peering_nyc =
      t.ConnectInter(s.access_nyc, s.content_nyc, 1.0, 100.0, addr_from);
  s.peering_lax =
      t.ConnectInter(s.access_lax, s.content_lax, 1.0, 100.0, addr_from);
  s.transit_access = t.ConnectInter(s.transit_r, s.access_core, 1.5, 200.0);
  s.transit_content = t.ConnectInter(s.transit_r, s.content_nyc, 1.5, 200.0);
  t.ConnectInter(s.content_nyc, stub_r, 4.0, 50.0);
  t.ConnectInter(s.transit_r, stub_r, 4.0, 50.0);
  t.ConnectInter(s.access_core, sibling_r, 2.0, 100.0);
  t.ConnectAtIxp(s.access_nyc, cdn_r, P(198, 32, 24), "SIM-IX", 1.0, 100.0);
  // VideoCdn numbers its own side of the LAX peering: acc-br-lax then has
  // successors in two distinct ASes, the evidence bdrmap's reassignment
  // heuristic needs to keep near-side border routers host-owned.
  t.ConnectInter(vcdn_r, s.access_lax, 1.0, 100.0, kVideoCdn);

  s.vp = t.AddVantagePoint("vp-nyc", SmallScenario::kAccess, s.access_core);

  // --- dynamics --------------------------------------------------------------
  s.net = std::make_unique<sim::SimNetwork>(t, options.seed);

  sim::LinkDemand congested;
  congested.default_peak_utilization = 0.55;
  congested.regimes.push_back({options.regime_start_day, options.regime_end_day,
                               options.congested_peak_utilization, -1.0});
  // peering_nyc was created as (access_nyc = a, content_nyc = b): the
  // congested direction content->access is B->A.
  s.net->SetDemand(s.peering_nyc, sim::Direction::kBtoA, congested);

  sim::LinkDemand mild;
  mild.default_peak_utilization = 0.40;
  s.net->SetDemand(s.peering_nyc, sim::Direction::kAtoB, mild);
  s.net->SetDemand(s.peering_lax, sim::Direction::kBtoA, mild);
  s.net->SetDemand(s.peering_lax, sim::Direction::kAtoB, mild);

  sim::LinkQueueModel queue;
  queue.buffer_ms = options.queue_buffer_ms;
  s.net->SetQueueModel(s.peering_nyc, queue);
  s.net->SetQueueModel(s.peering_lax, queue);

  return s;
}

}  // namespace manic::scenario
