#include "scenario/us_broadband.h"

#include <algorithm>
#include <cmath>

#include "stats/calendar.h"
#include "stats/rng.h"

namespace manic::scenario {

namespace {

using stats::StudyMonthStartDay;
using stats::Rng;
using topo::Ipv4Addr;
using topo::Prefix;
using topo::RouterId;

struct City {
  const char* name = nullptr;
  int utc_offset = 0;
};

constexpr City kCities[] = {
    {"nyc", -5}, {"bos", -5}, {"wdc", -5}, {"atl", -5}, {"chi", -6},
    {"dal", -6}, {"den", -7}, {"lax", -8}, {"sea", -8}, {"sfo", -8},
};

int CityIndex(const std::string& name) {
  for (int i = 0; i < 10; ++i) {
    if (name == kCities[i].name) return i;
  }
  return -1;
}

struct AccessSpec {
  Asn asn = 0;
  const char* name = nullptr;
  std::vector<const char*> cities;
};

const std::vector<AccessSpec>& AccessSpecs() {
  static const std::vector<AccessSpec> specs = {
      {UsBroadband::kComcast,
       "Comcast",
       {"nyc", "bos", "wdc", "atl", "chi", "den", "sea", "sfo", "lax"}},
      {UsBroadband::kAtt,
       "ATT",
       {"nyc", "wdc", "atl", "chi", "dal", "lax", "sfo"}},
      {UsBroadband::kVerizon,
       "Verizon",
       {"nyc", "bos", "wdc", "chi", "dal", "lax"}},
      {UsBroadband::kCenturyLink,
       "CenturyLink",
       {"den", "sea", "chi", "dal", "lax", "atl"}},
      {UsBroadband::kCox, "Cox", {"atl", "wdc", "dal", "lax", "sfo"}},
      {UsBroadband::kTwc, "TWC", {"nyc", "chi", "dal", "lax", "sfo"}},
      {UsBroadband::kCharter, "Charter", {"atl", "chi", "den", "lax"}},
      {UsBroadband::kRcn, "RCN", {"nyc", "bos", "chi"}},
  };
  return specs;
}

struct TcpSpec {
  Asn asn = 0;
  const char* name = nullptr;
  bool content = false;  // content providers peer; transit providers sell transit
  int city_count = 0;
};

const std::vector<TcpSpec>& TcpSpecs() {
  static const std::vector<TcpSpec> specs = {
      {UsBroadband::kGoogle, "Google", true, 10},
      {UsBroadband::kNetflix, "Netflix", true, 8},
      {UsBroadband::kTata, "Tata", false, 7},
      {UsBroadband::kNtt, "NTT", false, 7},
      {UsBroadband::kXo, "XO", false, 6},
      {UsBroadband::kLevel3, "Level3", false, 9},
      {UsBroadband::kVodafone, "Vodafone", false, 5},
      {UsBroadband::kTelia, "Telia", false, 5},
      {UsBroadband::kZayo, "Zayo", false, 6},
      {UsBroadband::kCogent, "Cogent", false, 7},
  };
  return specs;
}

// Pairs with "no observations" in Table 4 (no adjacency built).
const std::set<std::pair<Asn, Asn>>& ExcludedPairs() {
  static const std::set<std::pair<Asn, Asn>> excluded = {
      {UsBroadband::kTwc, UsBroadband::kGoogle},
      {UsBroadband::kCox, UsBroadband::kTata},
      {UsBroadband::kCharter, UsBroadband::kTata},
      {UsBroadband::kRcn, UsBroadband::kTata},
      {UsBroadband::kTwc, UsBroadband::kNtt},
      {UsBroadband::kCox, UsBroadband::kXo},
      {UsBroadband::kRcn, UsBroadband::kXo},
      {UsBroadband::kAtt, UsBroadband::kVodafone},
      {UsBroadband::kCharter, UsBroadband::kVodafone},
      {UsBroadband::kRcn, UsBroadband::kVodafone},
      {UsBroadband::kCharter, UsBroadband::kZayo},
  };
  return excluded;
}

// Observed peer/provider counts per access ISP (Table 3 column 2).
int ObservedTcpTarget(Asn access) {
  switch (access) {
    case UsBroadband::kCenturyLink: return 28;
    case UsBroadband::kAtt: return 34;
    case UsBroadband::kCox: return 20;
    case UsBroadband::kComcast: return 34;
    case UsBroadband::kCharter: return 18;
    case UsBroadband::kTwc: return 25;
    case UsBroadband::kVerizon: return 26;
    case UsBroadband::kRcn: return 19;
    default: return 12;
  }
}

// Vantage-point deployment: 29 VPs across the 8 ISPs (the paper's §6 set),
// including the West/East Comcast pair of Fig 9.
const std::vector<std::pair<Asn, std::vector<std::string>>>& VpPlan() {
  static const std::vector<std::pair<Asn, std::vector<std::string>>> plan = {
      {UsBroadband::kComcast,
       {"sfo", "bos", "nyc", "chi", "atl", "sea", "den"}},
      {UsBroadband::kAtt, {"nyc", "chi", "lax", "dal"}},
      {UsBroadband::kVerizon, {"nyc", "wdc", "bos", "chi"}},
      {UsBroadband::kCenturyLink, {"den", "sea", "dal"}},
      {UsBroadband::kCox, {"atl", "dal", "lax"}},
      {UsBroadband::kTwc, {"nyc", "lax", "dal"}},
      {UsBroadband::kCharter, {"chi", "lax", "atl"}},
      {UsBroadband::kRcn, {"nyc", "bos"}},
  };
  return plan;
}

const std::vector<std::string>& VpCitiesOf(Asn access) {
  static const std::vector<std::string> empty;
  for (const auto& [asn, cities] : VpPlan()) {
    if (asn == access) return cities;
  }
  return empty;
}

}  // namespace

std::vector<Episode> UsBroadbandSchedule() {
  using U = UsBroadband;
  // (access, tcp, m0, m1, link_frac, peak0, peak1); months 0 = 2016-03.
  //
  // Calibration: a link whose peak-hour utilization exceeds ~1.06 is
  // classified congested (>= 4% of the day) on ~93% of episode days, so a
  // pair's expected congested-day-link percentage is approximately
  //     sum over episodes of  round(frac*n)/n * months/22 * 0.93.
  // Fractions and month ranges below are solved against the paper's Table 4
  // values under the parallel-link counts in kNamedParallel (Google: 5,
  // except CenturyLink-Google: 2 — severe congestion on a small port count).
  return {
      // Google (CenturyLink severe all window; Comcast dissipates Jul'17).
      {U::kCenturyLink, U::kGoogle, 0, 22, 1.00, 1.70, 1.70},
      {U::kComcast, U::kGoogle, 0, 4, 0.40, 1.35, 1.10},
      {U::kComcast, U::kGoogle, 6, 10, 0.40, 1.10, 1.45},
      {U::kComcast, U::kGoogle, 10, 15, 0.40, 1.45, 1.06},
      {U::kVerizon, U::kGoogle, 0, 11, 0.40, 1.30, 1.20},
      // Declines but persists at a lower level through December 2017 (the
      // link of Fig 3 is a Verizon-Google link congested Dec 7-9 2017).
      {U::kVerizon, U::kGoogle, 15, 22, 0.20, 1.15, 1.25},
      {U::kAtt, U::kGoogle, 2, 11, 0.40, 1.25, 1.10},
      {U::kCox, U::kGoogle, 8, 10, 0.20, 1.06, 1.05},
      {U::kCharter, U::kGoogle, 5, 9, 0.20, 1.12, 1.06},
      // Tata (synchronized upswing late 2016 / 2017; AT&T peaks Jan 2017).
      {U::kComcast, U::kTata, 4, 8, 0.25, 1.10, 1.10},
      {U::kComcast, U::kTata, 12, 22, 0.85, 1.30, 1.70},
      {U::kAtt, U::kTata, 0, 10, 0.75, 1.35, 1.80},
      {U::kAtt, U::kTata, 10, 18, 0.50, 1.80, 1.25},
      {U::kAtt, U::kTata, 18, 22, 0.25, 1.25, 1.15},
      {U::kTwc, U::kTata, 0, 9, 0.70, 1.45, 1.10},
      {U::kCenturyLink, U::kTata, 4, 11, 0.25, 1.20, 1.12},
      {U::kVerizon, U::kTata, 3, 5, 0.25, 1.03, 1.03},
      // NTT (rises with Comcast-Tata in H2 2017).
      {U::kComcast, U::kNtt, 13, 22, 0.75, 1.20, 1.50},
      {U::kAtt, U::kNtt, 6, 12, 0.50, 1.25, 1.10},
      {U::kCox, U::kNtt, 4, 7, 0.50, 1.18, 1.08},
      // XO (AT&T long-lasting; TWC dissipates Dec 2016).
      {U::kAtt, U::kXo, 0, 11, 0.33, 1.15, 1.15},
      {U::kTwc, U::kXo, 0, 6, 0.33, 1.20, 1.06},
      {U::kComcast, U::kXo, 2, 6, 0.33, 1.15, 1.06},
      {U::kCenturyLink, U::kXo, 6, 10, 0.33, 1.12, 1.06},
      {U::kCharter, U::kXo, 10, 13, 0.33, 1.12, 1.06},
      {U::kVerizon, U::kXo, 5, 6, 0.33, 1.00, 1.00},
      // Netflix (Cox rise-and-decline; TWC 2016).
      {U::kCox, U::kNetflix, 6, 13, 0.67, 1.15, 1.25},
      {U::kTwc, U::kNetflix, 0, 10, 0.67, 1.35, 1.10},
      {U::kCenturyLink, U::kNetflix, 5, 9, 0.67, 1.12, 1.08},
      {U::kVerizon, U::kNetflix, 3, 6, 0.33, 1.10, 1.06},
      {U::kCharter, U::kNetflix, 4, 7, 0.33, 1.10, 1.06},
      {U::kAtt, U::kNetflix, 7, 9, 0.33, 1.03, 1.03},
      {U::kComcast, U::kNetflix, 9, 10, 0.33, 1.03, 1.03},
      // Level3 (Cox sustained).
      {U::kCox, U::kLevel3, 4, 14, 0.80, 1.25, 1.25},
      {U::kAtt, U::kLevel3, 8, 10, 0.40, 1.08, 1.06},
      {U::kCenturyLink, U::kLevel3, 9, 11, 0.40, 1.08, 1.06},
      {U::kTwc, U::kLevel3, 2, 4, 0.20, 1.10, 1.06},
      {U::kComcast, U::kLevel3, 6, 8, 0.20, 1.03, 1.03},
      {U::kVerizon, U::kLevel3, 11, 12, 0.20, 1.03, 1.03},
      {U::kRcn, U::kLevel3, 14, 15, 0.20, 0.995, 0.995},
      // Vodafone.
      {U::kCenturyLink, U::kVodafone, 3, 8, 0.33, 1.15, 1.08},
      {U::kVerizon, U::kVodafone, 5, 9, 0.33, 1.12, 1.06},
      {U::kComcast, U::kVodafone, 8, 10, 0.33, 1.07, 1.06},
      {U::kTwc, U::kVodafone, 0, 2, 0.33, 1.03, 1.03},
      // Telia (TWC 2016, dissipating by December 2016).
      {U::kAtt, U::kTelia, 3, 12, 0.33, 1.20, 1.08},
      {U::kTwc, U::kTelia, 0, 3, 0.33, 1.04, 1.04},
      {U::kComcast, U::kTelia, 10, 12, 0.33, 1.04, 1.04},
      {U::kVerizon, U::kTelia, 6, 7, 0.33, 1.025, 1.025},
      {U::kCenturyLink, U::kTelia, 4, 5, 0.33, 1.01, 1.01},
      // Zayo (RCN the outlier).
      {U::kRcn, U::kZayo, 8, 14, 0.67, 1.12, 1.20},
      {U::kCox, U::kZayo, 5, 6, 0.33, 1.06, 1.06},
      {U::kComcast, U::kZayo, 12, 13, 0.33, 1.00, 1.00},
      {U::kVerizon, U::kZayo, 4, 5, 0.33, 0.99, 0.99},
      {U::kCenturyLink, U::kZayo, 9, 10, 0.33, 1.005, 1.005},
      // Cogent (Table 2's CenturyLink-Cogent Link 3: mild, late 2017).
      {U::kCenturyLink, U::kCogent, 20, 22, 0.34, 0.972, 0.982},
      {U::kComcast, U::kCogent, 2, 6, 0.33, 1.10, 1.06},
  };
}

const InterLinkInfo* UsBroadband::FindLink(LinkId link) const noexcept {
  for (const InterLinkInfo& info : interdomain) {
    if (info.link == link) return &info;
  }
  return nullptr;
}

std::vector<const InterLinkInfo*> UsBroadband::LinksOfPair(Asn access,
                                                           Asn tcp) const {
  std::vector<const InterLinkInfo*> out;
  for (const InterLinkInfo& info : interdomain) {
    if (info.access == access && info.tcp == tcp) out.push_back(&info);
  }
  return out;
}

std::string UsBroadband::AsName(Asn asn) const {
  const topo::AsInfo* info = topo->FindAs(asn);
  return info != nullptr ? info->name : "AS" + std::to_string(asn);
}

UsBroadband MakeUsBroadband(const UsBroadbandOptions& options) {
  UsBroadband w;
  w.topo = std::make_unique<topo::Topology>();
  topo::Topology& t = *w.topo;
  Rng rng(options.seed);

  // ---- address allocation ---------------------------------------------------
  std::uint32_t announced_cursor = Ipv4Addr(10, 0, 0, 0).value();
  std::uint32_t infra_cursor = Ipv4Addr(100, 0, 0, 0).value();
  auto give_space = [&](Asn asn) {
    t.Announce(asn, Prefix(Ipv4Addr(announced_cursor), 16));
    announced_cursor += 0x10000u;
    const Prefix infra(Ipv4Addr(infra_cursor), 16);
    infra_cursor += 0x10000u;
    t.AddInfrastructure(asn, infra);
    t.Announce(asn, infra);
  };

  // ---- ASes -----------------------------------------------------------------
  std::map<Asn, std::map<std::string, RouterId>> routers;  // asn -> city -> id
  auto build_as = [&](Asn asn, const std::string& name,
                      const std::vector<std::string>& cities,
                      int extra_prefixes = 0) {
    t.AddAs(asn, name);
    give_space(asn);
    // Large networks announce many prefixes; bdrmap traces toward each one,
    // so ECMP spreads discovery across all parallel border links.
    for (int i = 0; i < extra_prefixes; ++i) {
      t.Announce(asn, Prefix(Ipv4Addr(announced_cursor), 16));
      announced_cursor += 0x10000u;
    }
    RouterId prev = topo::kInvalidId;
    for (const std::string& city : cities) {
      const int ci = CityIndex(city);
      const RouterId r = t.AddRouter(asn, name + "-" + city, city,
                                     kCities[ci].utc_offset);
      routers[asn][city] = r;
      if (prev != topo::kInvalidId) {
        // Chain + star off the first router for intra connectivity.
        t.ConnectIntra(routers[asn][cities.front()], r,
                       2.0 + 10.0 * rng.NextDouble());
      }
      prev = r;
    }
  };

  for (const AccessSpec& spec : AccessSpecs()) {
    std::vector<std::string> cities(spec.cities.begin(), spec.cities.end());
    build_as(spec.asn, spec.name, cities);
    w.access_ases.push_back(spec.asn);
  }
  for (const TcpSpec& spec : TcpSpecs()) {
    std::vector<std::string> cities;
    for (int i = 0; i < spec.city_count; ++i) cities.push_back(kCities[i].name);
    build_as(spec.asn, spec.name, cities, /*extra_prefixes=*/5);
    w.named_tcps.push_back(spec.asn);
    w.tcp_set.insert(spec.asn);
  }

  // Filler T&CPs: small content/transit networks peered with several APs.
  std::vector<Asn> fillers;
  for (int i = 0; i < options.filler_pool; ++i) {
    const Asn asn = 64500 + static_cast<Asn>(i);
    const std::string city = kCities[i % 10].name;
    build_as(asn, "TCP-F" + std::to_string(i), {city});
    fillers.push_back(asn);
    w.tcp_set.insert(asn);
  }

  // Customer stubs per access ISP.
  std::vector<Asn> customers;
  for (std::size_t a = 0; a < w.access_ases.size(); ++a) {
    for (int c = 0; c < options.customers_per_access; ++c) {
      const Asn asn = 65000 + static_cast<Asn>(a * 32 + c);
      const std::string city = AccessSpecs()[a].cities[
          static_cast<std::size_t>(c) % AccessSpecs()[a].cities.size()];
      build_as(asn, "Cust-" + t.FindAs(w.access_ases[a])->name + "-" +
                        std::to_string(c),
               {city});
      t.relationships.SetProviderCustomer(w.access_ases[a], asn);
      t.ConnectInter(routers[w.access_ases[a]][city], routers[asn][city], 1.0,
                     20.0, w.access_ases[a]);
      customers.push_back(asn);
    }
  }

  // ---- relationships ----------------------------------------------------------
  const std::vector<Asn> tier1s = {UsBroadband::kLevel3, UsBroadband::kTelia,
                                   UsBroadband::kTata,   UsBroadband::kNtt,
                                   UsBroadband::kCogent, UsBroadband::kVodafone};
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      t.relationships.SetPeers(tier1s[i], tier1s[j]);
      // Tier-1 mesh carries traffic too: one link between first-city routers.
      t.ConnectInter(routers[tier1s[i]].begin()->second,
                     routers[tier1s[j]].begin()->second, 2.0, 400.0);
    }
  }
  auto is_tier1 = [&](Asn asn) {
    return std::find(tier1s.begin(), tier1s.end(), asn) != tier1s.end();
  };
  // Transit providers of the content networks and fillers.
  for (const Asn asn : {UsBroadband::kGoogle, UsBroadband::kNetflix,
                        UsBroadband::kXo, UsBroadband::kZayo}) {
    for (int k = 0; k < 2; ++k) {
      const Asn provider = tier1s[(asn + static_cast<Asn>(k) * 3) % tier1s.size()];
      t.relationships.SetProviderCustomer(provider, asn);
      t.ConnectInter(routers[provider].begin()->second,
                     routers[asn].begin()->second, 2.0, 200.0);
    }
  }
  for (const Asn asn : fillers) {
    const Asn provider = tier1s[asn % tier1s.size()];
    t.relationships.SetProviderCustomer(provider, asn);
    t.ConnectInter(routers[provider].begin()->second,
                   routers[asn].begin()->second, 2.0, 100.0);
  }

  // ---- access <-> T&CP adjacencies -------------------------------------------
  // Parallel links in one metro terminate on *distinct* routers on the T&CP
  // side (as in real facilities): each far router then hot-potatoes its ICMP
  // replies over its own link, so a congested link's TSLP signal cannot leak
  // onto a clean sibling. The access side keeps one router per metro, so
  // forward ECMP still spreads destinations across the parallel links.
  std::map<std::pair<Asn, std::string>, int> tcp_city_use;
  auto connect_pair = [&](Asn access, Asn tcp, int parallel) {
    // Cities where both have routers. Interconnects concentrate in metros
    // where the access ISP hosts a VP: with hot-potato routing a VP only
    // ever crosses border links near it, so links elsewhere would be
    // invisible to the whole study (§7's incompleteness caveat) — the
    // calibrated day-link denominators assume observable links.
    std::vector<std::string> common;
    const auto& vp_cities = VpCitiesOf(access);
    for (const std::string& city : vp_cities) {
      if (routers[access].contains(city) && routers[tcp].contains(city)) {
        common.push_back(city);
      }
    }
    if (common.empty()) {
      // No VP metro in common: fall back to any shared city (links there may
      // remain unobserved, as in the real study).
      for (const auto& [city, r] : routers[access]) {
        if (routers[tcp].contains(city)) common.push_back(city);
      }
    }
    if (common.empty()) {
      // Fall back: bring the T&CP's first router into one AP city virtually
      // (a private interconnect at the AP's first city).
      common.push_back(routers[access].begin()->first);
    }
    for (int k = 0; k < parallel; ++k) {
      const std::string& city = common[static_cast<std::size_t>(k) % common.size()];
      const RouterId ar = routers[access][city];
      RouterId tr = routers[tcp].contains(city) ? routers[tcp][city]
                                                : routers[tcp].begin()->second;
      const int reuse = tcp_city_use[{tcp, city}]++;
      if (reuse > 0) {
        // Additional far-side router for this metro, one intra hop from the
        // primary one.
        const int ci = CityIndex(city);
        const RouterId extra = t.AddRouter(
            tcp,
            t.FindAs(tcp)->name + "-" + city + "-" + std::to_string(reuse + 1),
            city, ci >= 0 ? kCities[ci].utc_offset : 0);
        t.ConnectIntra(tr, extra, 0.5);
        routers[tcp][city + "#" + std::to_string(reuse)] = extra;
        tr = extra;
      }
      // Links numbered from the access side: the hard border-mapping case,
      // and the dominant U.S. convention.
      const LinkId link = t.ConnectInter(ar, tr, 1.0, 100.0, access);
      w.interdomain.push_back({city, link, access, tcp, false});
    }
  };

  // Parallel-link counts per named T&CP, calibrated so the per-pair (Table
  // 4) and per-AP aggregate (Table 3) day-link percentages can coexist:
  // severe pairs with few links (CenturyLink-Google) barely move the AP-wide
  // aggregate, exactly as in the paper.
  const std::map<Asn, int> kNamedParallel = {
      {UsBroadband::kGoogle, 5},  {UsBroadband::kNetflix, 3},
      {UsBroadband::kTata, 4},    {UsBroadband::kNtt, 4},
      {UsBroadband::kXo, 3},      {UsBroadband::kLevel3, 5},
      {UsBroadband::kVodafone, 3}, {UsBroadband::kTelia, 3},
      {UsBroadband::kZayo, 3},    {UsBroadband::kCogent, 3},
  };
  for (const AccessSpec& ap : AccessSpecs()) {
    int connected = 0;
    for (const TcpSpec& tcp : TcpSpecs()) {
      if (ExcludedPairs().contains({ap.asn, tcp.asn})) continue;
      // CenturyLink-Google: severe congestion concentrated on a small port
      // count (2 links), so the pair reaches 94% congested day-links while
      // CenturyLink's AP-wide aggregate stays low (Table 3 vs Table 4).
      int base = kNamedParallel.at(tcp.asn);
      if (ap.asn == UsBroadband::kCenturyLink &&
          tcp.asn == UsBroadband::kGoogle) {
        base = 2;
      }
      const int parallel = std::max(
          1, static_cast<int>(std::lround(options.link_scale * base)));
      connect_pair(ap.asn, tcp.asn, parallel);
      if (tcp.content || !is_tier1(tcp.asn)) {
        t.relationships.SetPeers(ap.asn, tcp.asn);
      } else {
        t.relationships.SetProviderCustomer(tcp.asn, ap.asn);
      }
      ++connected;
    }
    // Fillers to reach the observed-neighbor target.
    const int want = ObservedTcpTarget(ap.asn);
    for (std::size_t f = 0; connected < want && f < fillers.size(); ++f) {
      // Deterministic-but-varied subset per AP.
      if (stats::Rng::HashToUnit(options.seed, ap.asn, fillers[f]) > 0.75) {
        continue;
      }
      const int parallel = std::max(
          1, static_cast<int>(std::lround(
                 options.link_scale *
                 static_cast<double>(
                     2 + stats::Rng::HashMix(ap.asn, fillers[f]) % 2))));
      connect_pair(ap.asn, fillers[f], parallel);
      t.relationships.SetPeers(ap.asn, fillers[f]);
      ++connected;
    }
  }

  // ---- vantage points ----------------------------------------------------------
  w.net = std::make_unique<sim::SimNetwork>(t, options.seed);
  if (options.add_vantage_points) {
    const std::vector<std::pair<Asn, std::vector<std::string>>> vp_plan = {
        {UsBroadband::kComcast,
         {"sfo", "bos", "nyc", "chi", "atl", "sea", "den"}},  // mry/bed-like
        {UsBroadband::kAtt, {"nyc", "chi", "lax", "dal"}},
        {UsBroadband::kVerizon, {"nyc", "wdc", "bos", "chi"}},
        {UsBroadband::kCenturyLink, {"den", "sea", "dal"}},
        {UsBroadband::kCox, {"atl", "dal", "lax"}},
        {UsBroadband::kTwc, {"nyc", "lax", "dal"}},
        {UsBroadband::kCharter, {"chi", "lax", "atl"}},
        {UsBroadband::kRcn, {"nyc", "bos"}},
    };
    for (const auto& [asn, cities] : vp_plan) {
      for (const std::string& city : cities) {
        const std::string name =
            t.FindAs(asn)->name + "-" + city + "-us";
        const VpId vp = t.AddVantagePoint(name, asn, routers[asn][city]);
        w.vps.push_back(vp);
        w.vps_by_access[asn].push_back(vp);
      }
    }
  }

  // ---- demand schedule ----------------------------------------------------------
  w.schedule = UsBroadbandSchedule();
  for (const Episode& ep : w.schedule) {
    auto links = w.LinksOfPair(ep.access, ep.tcp);
    // Congestion lands preferentially on links in cities hosting a VP of the
    // access ISP — otherwise the scheduled pattern would fall on links no
    // vantage point can observe and the study would systematically under-
    // report (the paper's own visibility caveat, §7 "Incompleteness").
    std::set<std::string> vp_cities;
    const auto vps_it = w.vps_by_access.find(ep.access);
    if (vps_it != w.vps_by_access.end()) {
      for (const VpId vp : vps_it->second) {
        // manic-lint: allow(layout: alloc-scale) -- world-build time, one
        vp_cities.insert(t.router(t.vp(vp).first_hop).city);  // city per VP.
      }
    }
    std::stable_sort(links.begin(), links.end(),
                     [&](const InterLinkInfo* a, const InterLinkInfo* b) {
                       return vp_cities.contains(a->city) >
                              vp_cities.contains(b->city);
                     });
    const int affected = std::max(
        1, static_cast<int>(std::lround(
               ep.link_frac * static_cast<double>(links.size()))));
    for (int k = 0; k < affected && k < static_cast<int>(links.size()); ++k) {
      // interdomain entries are const pointers; find the mutable record.
      for (InterLinkInfo& info : w.interdomain) {
        if (info.link != links[static_cast<std::size_t>(k)]->link) continue;
        info.scheduled_congested = true;
        sim::LinkDemand& demand =
            w.net->DemandFor(info.link, sim::Direction::kBtoA);
        demand.default_peak_utilization =
            0.45 + 0.35 * stats::Rng::HashToUnit(options.seed, info.link, 7);
        // manic-lint: allow(layout: alloc-scale) -- a handful of episode
        // regimes per link, appended once at world construction.
        // manic-lint: allow(layout: alloc-scale)
        demand.regimes.push_back({StudyMonthStartDay(ep.m0),
                                  StudyMonthStartDay(ep.m1), ep.peak0,
                                  ep.peak1});
        sim::LinkQueueModel queue;
        queue.buffer_ms =
            30.0 + 15.0 * stats::Rng::HashToUnit(options.seed, info.link, 9);
        w.net->SetQueueModel(info.link, queue);
        break;
      }
    }
  }
  return w;
}

}  // namespace manic::scenario
