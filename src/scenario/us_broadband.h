// The synthetic U.S. broadband ecosystem of §6: eight access ISPs, the nine
// frequently-congested transit & content providers of Table 4 (plus Cogent
// for Table 2), filler T&CPs to reach each ISP's observed-neighbor count
// (Table 3), customer stubs, 29 vantage points, and a 22-month schedule of
// per-pair congestion episodes encoding the paper's §6.2 narrative (e.g.
// CenturyLink-Google congested nearly the whole window; Comcast-Google
// dissipating in July 2017 as Comcast-Tata/NTT rise). ASNs are the real
// ones; everything else (topology, addresses, traffic) is synthetic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/network.h"

namespace manic::scenario {

using topo::Asn;
using topo::LinkId;
using topo::VpId;

struct UsBroadbandOptions {
  std::uint64_t seed = 2016;
  // Scales the number of parallel links per AS pair (1.0 = default study
  // size, ~500 interdomain links; tests use smaller).
  double link_scale = 1.0;
  int customers_per_access = 6;
  int filler_pool = 40;
  bool add_vantage_points = true;
};

struct InterLinkInfo {
  std::string city;
  LinkId link = topo::kInvalidId;
  Asn access = 0;
  Asn tcp = 0;
  bool scheduled_congested = false;  // covered by at least one episode
};

// One congestion episode for an (access, tcp) pair: study months [m0, m1),
// affecting the first ceil(link_frac * n) parallel links, with the peak-hour
// utilization ramping peak0 -> peak1 across the episode.
struct Episode {
  Asn access = 0;
  Asn tcp = 0;
  int m0 = 0;
  int m1 = 0;
  double link_frac = 0.0;
  double peak0 = 1.0;
  double peak1 = 1.0;
};

struct UsBroadband {
  std::unique_ptr<topo::Topology> topo;
  std::unique_ptr<sim::SimNetwork> net;

  // Access ISPs (real-world ASNs, synthetic everything else).
  static constexpr Asn kComcast = 7922;
  static constexpr Asn kAtt = 7018;
  static constexpr Asn kVerizon = 701;
  static constexpr Asn kCenturyLink = 209;
  static constexpr Asn kCox = 22773;
  static constexpr Asn kTwc = 7843;
  static constexpr Asn kCharter = 20115;
  static constexpr Asn kRcn = 6079;
  // T&CPs.
  static constexpr Asn kGoogle = 15169;
  static constexpr Asn kNetflix = 2906;
  static constexpr Asn kTata = 6453;
  static constexpr Asn kNtt = 2914;
  static constexpr Asn kXo = 2828;
  static constexpr Asn kLevel3 = 3356;
  static constexpr Asn kVodafone = 1273;
  static constexpr Asn kTelia = 1299;
  static constexpr Asn kZayo = 6461;
  static constexpr Asn kCogent = 174;

  std::vector<Asn> access_ases;
  std::vector<Asn> named_tcps;
  std::set<Asn> tcp_set;  // named + fillers: the "reduced set" of §6
  std::vector<VpId> vps;
  std::map<Asn, std::vector<VpId>> vps_by_access;
  std::vector<InterLinkInfo> interdomain;  // access<->tcp links only
  std::vector<Episode> schedule;

  const InterLinkInfo* FindLink(LinkId link) const noexcept;
  std::vector<const InterLinkInfo*> LinksOfPair(Asn access, Asn tcp) const;
  std::string AsName(Asn asn) const;
};

UsBroadband MakeUsBroadband(const UsBroadbandOptions& options = {});

// The paper-narrative schedule (exposed for the EXPERIMENTS.md ground-truth
// column and for tests).
std::vector<Episode> UsBroadbandSchedule();

}  // namespace manic::scenario
