// The autocorrelation congestion-inference method (§4.2) — the paper's
// primary detector. Raw TSLP latencies are aggregated into 15-minute
// minimum bins; over a 50-day window, each interval-of-day accumulates the
// number of days on which the far-side RTT exceeded (window min RTT + 7 ms)
// while the near side was NOT elevated (near-side elevation indicates
// congestion inside the access network and is excluded). A recurring
// congestion window is the contiguous run of intervals around the peak
// count; false-positive filters reject series with ambiguous multi-modal
// peaks or peaks driven by disjoint day sets. Each day is then classified
// and assigned a congestion level = elevated in-window intervals / 96.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "stats/timeseries.h"

namespace manic::infer {

using stats::TimeSec;

// Acceptance thresholds for the per-link DataQuality verdict (data_quality.h):
// how much of the window must actually have been observed before an
// inference is trusted — the automated stand-in for the paper's operator
// validation of sparse links.
struct DataQualityConfig {
  double min_coverage_frac = 0.5;  // far-side bins present / total bins
  int max_gap_intervals = 2 * 96;  // longest run of missing far bins (2 days)
  int min_days_observed = 7;       // days with at least one far bin
};

struct AutocorrConfig {
  int window_days = 50;
  int intervals_per_day = 96;   // 15-minute bins
  double elevation_ms = 7.0;    // threshold above window min RTT
  int min_elevated_days = 7;    // peak support needed to assert recurrence
  double adjacency_frac = 0.5;  // adjacent interval keeps window if
                                // count >= frac * peak count
  double rival_frac = 0.8;      // disjoint rival peak triggering the filters
  double rival_day_overlap = 0.3;  // Jaccard below this => different days
                                   // drive different peaks => reject
  TimeSec bin_width = 900;
  DataQualityConfig quality;
};

// A days x intervals grid of per-bin minimum RTTs; NaN marks missing bins.
class DayGrid {
 public:
  DayGrid(int days, int intervals)
      : days_(days),
        intervals_(intervals),
        values_(static_cast<std::size_t>(days) * intervals,
                std::numeric_limits<float>::quiet_NaN()) {}

  int days() const noexcept { return days_; }
  int intervals() const noexcept { return intervals_; }
  float At(int day, int interval) const noexcept {
    return values_[static_cast<std::size_t>(day) * intervals_ + interval];
  }
  void Set(int day, int interval, float v) noexcept {
    values_[static_cast<std::size_t>(day) * intervals_ + interval] = v;
  }
  std::span<const float> Row(int day) const noexcept {
    return {values_.data() + static_cast<std::size_t>(day) * intervals_,
            static_cast<std::size_t>(intervals_)};
  }
  static bool Missing(float v) noexcept { return std::isnan(v); }

  // Builds a grid from a raw time series over [t0, t0 + days*86400) using
  // minimum aggregation per bin.
  static DayGrid FromSeries(const stats::TimeSeries& series, TimeSec t0,
                            int days, TimeSec bin_width);

 private:
  int days_ = 0;
  int intervals_ = 0;
  std::vector<float> values_;
};

enum class RejectReason : std::uint8_t {
  kNone,
  kInsufficientData,   // too few usable bins
  kNoPeak,             // peak support below min_elevated_days
  kAmbiguousWindows,   // several candidate windows across the day
  kInconsistentDays,   // different days drive different peaks
  kLowCoverage,        // DataQuality verdict below the acceptance thresholds
};

struct AutocorrResult {
  bool recurring = false;
  RejectReason reject = RejectReason::kNone;
  // Recurring congestion window in interval-of-day units; may wrap midnight
  // (start + len can exceed intervals_per_day; reduce modulo).
  int window_start = 0;
  int window_len = 0;
  double min_rtt_ms = 0.0;
  double threshold_ms = 0.0;
  std::vector<int> counts;               // elevated-day count per interval
  std::vector<std::uint8_t> day_congested;  // per window day
  std::vector<double> day_fraction;         // congestion level per day

  bool InWindow(int interval, int intervals_per_day) const noexcept {
    if (!recurring) return false;
    const int rel = (interval - window_start + intervals_per_day) %
                    intervals_per_day;
    return rel < window_len;
  }
};

// Batch analysis of one link-from-one-VP over a window (far and near grids
// must have identical dimensions).
AutocorrResult AnalyzeWindow(const DayGrid& far, const DayGrid& near,
                             const AutocorrConfig& config = {});

namespace detail {

// Window detection shared by the batch and rolling implementations so they
// cannot diverge: given per-interval elevated-day counts and an accessor for
// the (day, interval) elevation flags, finds the recurring window and
// applies the rival-peak rejection filters.
struct WindowDetection {
  bool recurring = false;
  RejectReason reject = RejectReason::kNone;
  int window_start = 0;
  int window_len = 0;
  int peak_interval = 0;
  int peak_count = 0;
};

template <typename ElevatedFn>  // bool(int day, int interval)
WindowDetection DetectRecurringWindow(std::span<const int> counts, int days,
                                      const ElevatedFn& elevated,
                                      const AutocorrConfig& cfg) {
  WindowDetection det;
  const int I = static_cast<int>(counts.size());

  int peak = 0, peak_s = 0;
  for (int s = 0; s < I; ++s) {
    if (counts[static_cast<std::size_t>(s)] > peak) {
      peak = counts[static_cast<std::size_t>(s)];
      peak_s = s;
    }
  }
  det.peak_interval = peak_s;
  det.peak_count = peak;
  if (peak < cfg.min_elevated_days) {
    det.reject = RejectReason::kNoPeak;
    return det;
  }

  const int keep =
      std::max(1, static_cast<int>(std::ceil(cfg.adjacency_frac * peak)));
  int left = peak_s;
  int len = 1;
  while (len < I) {
    const int next_left = (left - 1 + I) % I;
    if (counts[static_cast<std::size_t>(next_left)] >= keep) {
      left = next_left;
      ++len;
    } else {
      break;
    }
  }
  int right = peak_s;
  while (len < I) {
    const int next_right = (right + 1) % I;
    if (next_right == left) break;
    if (counts[static_cast<std::size_t>(next_right)] >= keep) {
      right = next_right;
      ++len;
    } else {
      break;
    }
  }
  det.window_start = left;
  det.window_len = len;

  auto in_window = [&](int s) {
    const int rel = (s - left + I) % I;
    return rel < len;
  };
  int rival_s = -1, rival = 0;
  for (int s = 0; s < I; ++s) {
    if (in_window(s) || in_window((s + 1) % I) || in_window((s - 1 + I) % I)) {
      continue;
    }
    if (counts[static_cast<std::size_t>(s)] > rival) {
      rival = counts[static_cast<std::size_t>(s)];
      rival_s = s;
    }
  }
  if (rival_s >= 0 && rival >= cfg.rival_frac * peak) {
    int both = 0, either = 0;
    for (int d = 0; d < days; ++d) {
      const bool a = elevated(d, peak_s);
      const bool b = elevated(d, rival_s);
      if (a && b) ++both;
      if (a || b) ++either;
    }
    const double jaccard =
        either > 0 ? static_cast<double>(both) / either : 0.0;
    det.reject = jaccard < cfg.rival_day_overlap
                     ? RejectReason::kInconsistentDays
                     : RejectReason::kAmbiguousWindows;
    return det;
  }
  det.recurring = true;
  return det;
}

}  // namespace detail

// Merges per-VP inferences for the same link (§4.2 final stage): a link is
// recurring-congested if any VP asserts it; day fractions are averaged over
// the VPs that observed the day and asserted recurrence.
AutocorrResult MergeVpInferences(std::span<const AutocorrResult> per_vp,
                                 const AutocorrConfig& config = {});

}  // namespace manic::infer
