// Incremental (rolling-window) variant of the autocorrelation method, used
// by the longitudinal benches that classify every day of a 22-month study
// for ~1000 links: instead of rescanning the 50x96 grid per day, it
// maintains per-interval elevated-day counts and updates them as days enter
// and leave the window. Guaranteed (and property-tested) to classify the
// newest day exactly as the batch AnalyzeWindow would on the same window.
#pragma once

#include <deque>
#include <optional>
#include <span>

#include "infer/autocorr.h"

namespace manic::infer {

struct DayClassification {
  bool recurring = false;       // link shows recurring congestion this window
  RejectReason reject = RejectReason::kNone;
  bool congested = false;       // the newest day, inside the recurring window
  double fraction = 0.0;        // congestion level of the newest day
  int window_start = 0;
  int window_len = 0;
  double threshold_ms = 0.0;
  // Interval-of-day indices (within the recurring window) that were elevated
  // on the newest day — the per-interval detail Fig 9's histograms consume.
  std::vector<int> congested_intervals;
};

class RollingAutocorr {
 public:
  explicit RollingAutocorr(AutocorrConfig config = {});

  // Appends one day of per-interval minimum RTTs (NaN = missing bin) for
  // the far and near side; evicts the oldest day once the window is full.
  void AddDay(std::span<const float> far, std::span<const float> near);

  // True once window_days days have been accumulated.
  bool WindowFull() const noexcept {
    return static_cast<int>(far_.size()) >= config_.window_days;
  }
  int DaysHeld() const noexcept { return static_cast<int>(far_.size()); }

  // Classification of the newest day against the current window.
  DayClassification Classify() const;

  // Batch-equivalent view of the current window (for tests).
  AutocorrResult AnalyzeBatch() const;

 private:
  void RecomputeFlags();
  void ComputeDayFlags(std::span<const float> far, std::span<const float> near,
                       std::vector<std::uint8_t>& flags) const;

  AutocorrConfig config_;
  std::deque<std::vector<float>> far_;
  std::deque<std::vector<float>> near_;
  std::deque<std::vector<std::uint8_t>> flags_;  // elevated per interval
  std::deque<float> day_far_min_;
  std::deque<float> day_near_min_;
  std::vector<int> counts_;
  double far_min_ = std::numeric_limits<double>::infinity();
  double near_min_ = std::numeric_limits<double>::infinity();
};

}  // namespace manic::infer
