// Incremental, O(1)-per-sample inference state for the serving plane
// (src/serve) — and the exact same arithmetic the batch study driver runs,
// so a live daemon fed a recorded stream reproduces the batch pipeline's
// verdicts bit for bit:
//
//   QualityTally          streaming per-(VP, link) data-quality bookkeeping
//                         (lifted from the study driver, which now consumes
//                         it from here). Built to segment-merge exactly:
//                         Append()ing tallies over adjacent day ranges
//                         equals one tally over the union.
//   LinkQualityAccumulator folds per-VP tallies into the per-link
//                         DataQuality verdict exactly as the driver's
//                         link-quality rollup does.
//   StreamingClassifier   one (VP, link) pair's live state: open-day
//                         minimum-RTT bins filled one sample at a time,
//                         closed days pushed into a RollingAutocorr window.
//                         AddSample is O(1); CloseDay is the same per-day
//                         work the rolling bench measures at ~5.7 us/day.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "infer/data_quality.h"
#include "infer/rolling.h"

namespace manic::infer {

// Streaming data-quality bookkeeping for one VP-link pair: coverage counts,
// the longest run of missing far bins (time-ordered across day boundaries),
// and day-level observed/unobserved churn. Every field is an exact count,
// so the sharded study path's per-chunk tallies fold to the same integers
// the serial path streams.
struct QualityTally {
  std::int64_t far_present = 0, far_total = 0;
  std::int64_t near_present = 0, near_total = 0;
  // Gap segment over far bins (in intervals). Invariant when no far bin has
  // been seen yet: prefix_gap == suffix_gap == max_gap == far_total, which
  // lets Append() treat an all-missing neighbor as one long run.
  std::int64_t prefix_gap = 0, suffix_gap = 0, max_gap = 0;
  std::int64_t days_observed = 0;
  std::int64_t churn = 0;  // day-level observed <-> unobserved transitions
  bool any_bin = false;
  bool has_days = false;
  bool first_day_observed = false, last_day_observed = false;

  void AddDay(const std::vector<float>& far, const std::vector<float>& near) {
    bool day_observed = false;
    for (const float v : far) {
      ++far_total;
      if (std::isnan(v)) {
        ++suffix_gap;
      } else {
        ++far_present;
        day_observed = true;
        if (!any_bin) {
          prefix_gap = suffix_gap;
          any_bin = true;
        }
        max_gap = std::max(max_gap, suffix_gap);
        suffix_gap = 0;
      }
    }
    if (any_bin) {
      max_gap = std::max(max_gap, suffix_gap);
    } else {
      prefix_gap = max_gap = far_total;  // suffix_gap already == far_total
    }
    for (const float v : near) {
      ++near_total;
      if (!std::isnan(v)) ++near_present;
    }
    if (day_observed) ++days_observed;
    if (has_days && last_day_observed != day_observed) ++churn;
    if (!has_days) {
      first_day_observed = day_observed;
      has_days = true;
    }
    last_day_observed = day_observed;
  }

  // Folds `b` (the tally over the immediately following day range) in.
  void Append(const QualityTally& b) {
    max_gap = std::max({max_gap, b.max_gap, suffix_gap + b.prefix_gap});
    if (!any_bin) prefix_gap = far_total + b.prefix_gap;
    suffix_gap = b.any_bin ? b.suffix_gap : suffix_gap + b.far_total;
    any_bin = any_bin || b.any_bin;
    if (!any_bin) {
      prefix_gap = suffix_gap = max_gap = far_total + b.far_total;
    }
    far_present += b.far_present;
    far_total += b.far_total;
    near_present += b.near_present;
    near_total += b.near_total;
    days_observed += b.days_observed;
    churn += b.churn + ((has_days && b.has_days &&
                         last_day_observed != b.first_day_observed)
                            ? 1
                            : 0);
    if (!has_days) first_day_observed = b.first_day_observed;
    if (b.has_days) last_day_observed = b.last_day_observed;
    has_days = has_days || b.has_days;
  }
};

// Per-link DataQuality from per-VP tallies: coverage counts sum across
// contributing VPs, the gap and days-observed verdicts take the
// best-informed single VP's worst gap / best day count, and churn events
// sum (each VP's appearances and disappearances all degrade confidence).
// Tallies that never saw a bin (far_total == 0) must be skipped by the
// caller — only measured pairs contribute, so link-quality maps only cover
// measured links.
struct LinkQualityAccumulator {
  std::int64_t far_present = 0, far_total = 0;
  std::int64_t near_present = 0, near_total = 0;
  std::int64_t gap = 0, days_observed = 0, churn = 0;

  void Add(const QualityTally& t) {
    far_present += t.far_present;
    far_total += t.far_total;
    near_present += t.near_present;
    near_total += t.near_total;
    gap = std::max(gap, t.max_gap);
    days_observed = std::max(days_observed, t.days_observed);
    churn += t.churn;
  }

  DataQuality Finish(int total_days) const;
};

// Live classification state for one (VP, link) pair. Samples land in
// open-day bins (minimum aggregation, NaN = probed-but-unanswered marker);
// CloseDay folds a finished day into the rolling autocorrelation window and
// the quality tally, and classifies it exactly as the batch driver's
// per-day loop would: AddDay for every day that produced any record,
// quality only from day 0 on, a classification only once the window is
// full. Because the ingest feed can cross a day boundary before the day is
// closed (the boundary is only known once a later sample arrives), up to a
// handful of days may be open at once.
class StreamingClassifier {
 public:
  explicit StreamingClassifier(AutocorrConfig config = {});

  // O(1): records one probed slot of day `day`. A NaN value marks the slot
  // probed-but-unanswered (the day still counts as observed); duplicate
  // (day, interval) values keep the minimum.
  void AddSample(std::int64_t day, int interval, bool far_side,
                 float value_ms);

  struct DayOutcome {
    bool observed = false;  // any record landed on this day
    // Set when the day was observed, non-negative, and the rolling window
    // is full — the same gate the batch daily loop applies.
    std::optional<DayClassification> classification;
  };
  // Finalizes `day`. Days must be closed in ascending order; closing a day
  // that received no record is a no-op (an invisible day, exactly like a
  // batch pair outside its visibility window).
  DayOutcome CloseDay(std::int64_t day);

  const QualityTally& quality() const noexcept { return quality_; }
  bool WindowFull() const noexcept { return rolling_.WindowFull(); }
  int DaysHeld() const noexcept { return rolling_.DaysHeld(); }
  std::size_t OpenDays() const noexcept { return open_.size(); }

 private:
  struct OpenDay {
    std::vector<float> far, near;
  };

  AutocorrConfig config_;
  std::map<std::int64_t, OpenDay> open_;
  RollingAutocorr rolling_;
  QualityTally quality_;
};

}  // namespace manic::infer
