#include "infer/rolling.h"

#include <algorithm>

namespace manic::infer {

namespace {

float RowMin(std::span<const float> row) noexcept {
  float m = std::numeric_limits<float>::infinity();
  for (const float v : row) {
    if (!DayGrid::Missing(v)) m = std::min(m, v);
  }
  return m;
}

}  // namespace

RollingAutocorr::RollingAutocorr(AutocorrConfig config)
    : config_(config),
      counts_(static_cast<std::size_t>(config.intervals_per_day), 0) {}

void RollingAutocorr::ComputeDayFlags(std::span<const float> far,
                                      std::span<const float> near,
                                      std::vector<std::uint8_t>& flags) const {
  const double far_thr = far_min_ + config_.elevation_ms;
  const double near_thr = near_min_ + config_.elevation_ms;
  flags.assign(static_cast<std::size_t>(config_.intervals_per_day), 0);
  for (int s = 0; s < config_.intervals_per_day; ++s) {
    const float fv = far[static_cast<std::size_t>(s)];
    if (DayGrid::Missing(fv) || fv <= far_thr) continue;
    const float nv = near[static_cast<std::size_t>(s)];
    if (!DayGrid::Missing(nv) && nv > near_thr) continue;
    flags[static_cast<std::size_t>(s)] = 1;
  }
}

void RollingAutocorr::RecomputeFlags() {
  std::fill(counts_.begin(), counts_.end(), 0);
  for (std::size_t d = 0; d < far_.size(); ++d) {
    ComputeDayFlags(far_[d], near_[d], flags_[d]);
    for (int s = 0; s < config_.intervals_per_day; ++s) {
      counts_[static_cast<std::size_t>(s)] += flags_[d][static_cast<std::size_t>(s)];
    }
  }
}

void RollingAutocorr::AddDay(std::span<const float> far,
                             std::span<const float> near) {
  bool min_dirty = false;

  if (static_cast<int>(far_.size()) >= config_.window_days) {
    // Evict the oldest day.
    for (int s = 0; s < config_.intervals_per_day; ++s) {
      counts_[static_cast<std::size_t>(s)] -=
          flags_.front()[static_cast<std::size_t>(s)];
    }
    const bool held_far_min =
        static_cast<double>(day_far_min_.front()) <= far_min_;
    const bool held_near_min =
        static_cast<double>(day_near_min_.front()) <= near_min_;
    far_.pop_front();
    near_.pop_front();
    flags_.pop_front();
    day_far_min_.pop_front();
    day_near_min_.pop_front();
    if (held_far_min || held_near_min) {
      far_min_ = std::numeric_limits<double>::infinity();
      near_min_ = std::numeric_limits<double>::infinity();
      for (std::size_t d = 0; d < far_.size(); ++d) {
        far_min_ = std::min(far_min_, static_cast<double>(day_far_min_[d]));
        near_min_ = std::min(near_min_, static_cast<double>(day_near_min_[d]));
      }
      min_dirty = true;
    }
  }

  far_.emplace_back(far.begin(), far.end());
  near_.emplace_back(near.begin(), near.end());
  day_far_min_.push_back(RowMin(far));
  day_near_min_.push_back(RowMin(near));
  if (static_cast<double>(day_far_min_.back()) < far_min_) {
    far_min_ = day_far_min_.back();
    min_dirty = true;
  }
  if (static_cast<double>(day_near_min_.back()) < near_min_) {
    near_min_ = day_near_min_.back();
    min_dirty = true;
  }

  flags_.emplace_back();
  if (min_dirty) {
    RecomputeFlags();
  } else {
    ComputeDayFlags(far_.back(), near_.back(), flags_.back());
    for (int s = 0; s < config_.intervals_per_day; ++s) {
      counts_[static_cast<std::size_t>(s)] +=
          flags_.back()[static_cast<std::size_t>(s)];
    }
  }
}

DayClassification RollingAutocorr::Classify() const {
  DayClassification cls;
  if (far_.empty()) return cls;

  // Usable-data guard mirroring the batch implementation.
  std::size_t defined = 0;
  for (const auto& row : far_) {
    for (const float v : row) {
      if (!DayGrid::Missing(v)) ++defined;
    }
  }
  const std::size_t total =
      far_.size() * static_cast<std::size_t>(config_.intervals_per_day);
  cls.threshold_ms = far_min_ + config_.elevation_ms;
  if (defined < total / 4) {
    cls.reject = RejectReason::kInsufficientData;
    return cls;
  }

  const auto det = detail::DetectRecurringWindow(
      counts_, static_cast<int>(far_.size()),
      [&](int d, int s) {
        return flags_[static_cast<std::size_t>(d)]
                     [static_cast<std::size_t>(s)] != 0;
      },
      config_);
  cls.reject = det.reject;
  cls.recurring = det.recurring;
  cls.window_start = det.window_start;
  cls.window_len = det.window_len;
  if (!det.recurring) return cls;

  const auto& today = flags_.back();
  for (int k = 0; k < det.window_len; ++k) {
    const int s = (det.window_start + k) % config_.intervals_per_day;
    if (today[static_cast<std::size_t>(s)] != 0) {
      cls.congested_intervals.push_back(s);
    }
  }
  cls.congested = !cls.congested_intervals.empty();
  cls.fraction = static_cast<double>(cls.congested_intervals.size()) /
                 config_.intervals_per_day;
  return cls;
}

AutocorrResult RollingAutocorr::AnalyzeBatch() const {
  DayGrid far(static_cast<int>(far_.size()), config_.intervals_per_day);
  DayGrid near(static_cast<int>(near_.size()), config_.intervals_per_day);
  for (std::size_t d = 0; d < far_.size(); ++d) {
    for (int s = 0; s < config_.intervals_per_day; ++s) {
      far.Set(static_cast<int>(d), s, far_[d][static_cast<std::size_t>(s)]);
      near.Set(static_cast<int>(d), s, near_[d][static_cast<std::size_t>(s)]);
    }
  }
  return AnalyzeWindow(far, near, config_);
}

}  // namespace manic::infer
