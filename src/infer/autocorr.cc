#include "infer/autocorr.h"

#include <algorithm>
#include <set>

namespace manic::infer {

DayGrid DayGrid::FromSeries(const stats::TimeSeries& series, TimeSec t0,
                            int days, TimeSec bin_width) {
  const int intervals = static_cast<int>(86400 / bin_width);
  DayGrid grid(days, intervals);
  const TimeSec t1 = t0 + static_cast<TimeSec>(days) * 86400;
  const std::size_t lo = series.LowerBound(t0);
  for (std::size_t i = lo; i < series.size() && series[i].t < t1; ++i) {
    const TimeSec rel = series[i].t - t0;
    const int day = static_cast<int>(rel / 86400);
    const int interval = static_cast<int>((rel % 86400) / bin_width);
    const float v = static_cast<float>(series[i].value);
    const float cur = grid.At(day, interval);
    if (Missing(cur) || v < cur) grid.Set(day, interval, v);
  }
  return grid;
}

namespace {

struct Elevation {
  double far_min = 0.0;
  double near_min = 0.0;
  double far_thr = 0.0;
  double near_thr = 0.0;
  std::size_t defined = 0;
};

Elevation ComputeThresholds(const DayGrid& far, const DayGrid& near,
                            const AutocorrConfig& cfg) {
  Elevation e;
  double fmin = std::numeric_limits<double>::infinity();
  double nmin = std::numeric_limits<double>::infinity();
  for (int d = 0; d < far.days(); ++d) {
    for (int s = 0; s < far.intervals(); ++s) {
      const float fv = far.At(d, s);
      if (!DayGrid::Missing(fv)) {
        fmin = std::min(fmin, static_cast<double>(fv));
        ++e.defined;
      }
      const float nv = near.At(d, s);
      if (!DayGrid::Missing(nv)) nmin = std::min(nmin, static_cast<double>(nv));
    }
  }
  e.far_min = std::isfinite(fmin) ? fmin : 0.0;
  e.near_min = std::isfinite(nmin) ? nmin : 0.0;
  e.far_thr = e.far_min + cfg.elevation_ms;
  e.near_thr = e.near_min + cfg.elevation_ms;
  return e;
}

bool Elevated(const DayGrid& far, const DayGrid& near, int d, int s,
              const Elevation& e) {
  const float fv = far.At(d, s);
  if (DayGrid::Missing(fv) || fv <= e.far_thr) return false;
  // Exclude intervals where the near side is itself elevated: the latency
  // rise is then inside the host network, not at the interdomain link.
  const float nv = near.At(d, s);
  if (!DayGrid::Missing(nv) && nv > e.near_thr) return false;
  return true;
}

}  // namespace

AutocorrResult AnalyzeWindow(const DayGrid& far, const DayGrid& near,
                             const AutocorrConfig& cfg) {
  AutocorrResult result;
  const int D = far.days();
  const int I = far.intervals();
  result.counts.assign(static_cast<std::size_t>(I), 0);
  result.day_congested.assign(static_cast<std::size_t>(D), 0);
  result.day_fraction.assign(static_cast<std::size_t>(D), 0.0);

  const Elevation e = ComputeThresholds(far, near, cfg);
  result.min_rtt_ms = e.far_min;
  result.threshold_ms = e.far_thr;
  if (e.defined < static_cast<std::size_t>(D) * I / 4) {
    result.reject = RejectReason::kInsufficientData;
    return result;
  }

  for (int d = 0; d < D; ++d) {
    for (int s = 0; s < I; ++s) {
      if (Elevated(far, near, d, s, e)) {
        ++result.counts[static_cast<std::size_t>(s)];
      }
    }
  }

  const detail::WindowDetection det = detail::DetectRecurringWindow(
      result.counts, D,
      [&](int d, int s) { return Elevated(far, near, d, s, e); }, cfg);
  result.window_start = det.window_start;
  result.window_len = det.window_len;
  result.reject = det.reject;
  if (!det.recurring) return result;

  // Per-day classification and congestion level.
  result.recurring = true;
  for (int d = 0; d < D; ++d) {
    int elevated_in_window = 0;
    for (int k = 0; k < det.window_len; ++k) {
      const int s = (det.window_start + k) % I;
      if (Elevated(far, near, d, s, e)) ++elevated_in_window;
    }
    result.day_congested[static_cast<std::size_t>(d)] =
        elevated_in_window > 0 ? 1 : 0;
    result.day_fraction[static_cast<std::size_t>(d)] =
        static_cast<double>(elevated_in_window) / static_cast<double>(I);
  }
  return result;
}

AutocorrResult MergeVpInferences(std::span<const AutocorrResult> per_vp,
                                 const AutocorrConfig& cfg) {
  AutocorrResult merged;
  (void)cfg;
  int best_peak = -1;
  std::size_t days = 0;
  for (const AutocorrResult& r : per_vp) days = std::max(days, r.day_fraction.size());
  merged.day_fraction.assign(days, 0.0);
  merged.day_congested.assign(days, 0);
  std::vector<int> contributors(days, 0);

  for (const AutocorrResult& r : per_vp) {
    if (!r.recurring) continue;
    merged.recurring = true;
    int peak = 0;
    for (const int c : r.counts) peak = std::max(peak, c);
    if (peak > best_peak) {
      best_peak = peak;
      merged.window_start = r.window_start;
      merged.window_len = r.window_len;
      merged.min_rtt_ms = r.min_rtt_ms;
      merged.threshold_ms = r.threshold_ms;
      merged.counts = r.counts;
    }
    for (std::size_t d = 0; d < r.day_fraction.size(); ++d) {
      merged.day_fraction[d] += r.day_fraction[d];
      ++contributors[d];
    }
  }
  if (!merged.recurring) {
    merged.reject = per_vp.empty() ? RejectReason::kInsufficientData
                                   : per_vp.front().reject;
    return merged;
  }
  for (std::size_t d = 0; d < days; ++d) {
    if (contributors[d] > 0) {
      merged.day_fraction[d] /= contributors[d];
      merged.day_congested[d] = merged.day_fraction[d] > 0.0 ? 1 : 0;
    }
  }
  return merged;
}

}  // namespace manic::infer
