#include "infer/streaming.h"

#include <limits>

namespace manic::infer {

DataQuality LinkQualityAccumulator::Finish(int total_days) const {
  DataQuality q;
  q.far_coverage_frac = far_total == 0
                            ? 0.0
                            : static_cast<double>(far_present) /
                                  static_cast<double>(far_total);
  q.near_coverage_frac = near_total == 0
                             ? 0.0
                             : static_cast<double>(near_present) /
                                   static_cast<double>(near_total);
  q.longest_gap_intervals = static_cast<int>(gap);
  q.days_observed = static_cast<int>(days_observed);
  q.total_days = total_days;
  q.vp_churn_events = static_cast<int>(churn);
  return q;
}

StreamingClassifier::StreamingClassifier(AutocorrConfig config)
    : config_(config), rolling_(config) {}

// Called for every sample the serving plane ingests; fenced by the linter's
// hot-path contract. The only allocations are the justified first-sample-of-
// a-day bin setup below (open_[day]'s node allocation is the same cold event).
// manic-lint: hot-path(begin)
void StreamingClassifier::AddSample(std::int64_t day, int interval,
                                    bool far_side, float value_ms) {
  if (interval < 0 || interval >= config_.intervals_per_day) return;
  OpenDay& od = open_[day];
  if (od.far.empty()) {
    // First sample of a day: one-time bin allocation for the fresh OpenDay,
    // not the steady-state path.
    // manic-lint: allow(hot-path)
    od.far.assign(static_cast<std::size_t>(config_.intervals_per_day),
                  std::numeric_limits<float>::quiet_NaN());
    // manic-lint: allow(hot-path) -- same one-time cold path as above.
    od.near.assign(static_cast<std::size_t>(config_.intervals_per_day),
                   std::numeric_limits<float>::quiet_NaN());
  }
  if (std::isnan(value_ms)) return;  // marker: the day is now open, bin stays NaN
  float& slot = far_side ? od.far[static_cast<std::size_t>(interval)]
                         : od.near[static_cast<std::size_t>(interval)];
  slot = std::isnan(slot) ? value_ms : std::min(slot, value_ms);
}
// manic-lint: hot-path(end)

StreamingClassifier::DayOutcome StreamingClassifier::CloseDay(
    std::int64_t day) {
  DayOutcome outcome;
  // Days close in ascending order, so any earlier day still open here can
  // never be finalized — evict its bins rather than hold them forever.
  open_.erase(open_.begin(), open_.lower_bound(day));
  const auto it = open_.find(day);
  if (it == open_.end()) return outcome;  // invisible day: nothing recorded
  outcome.observed = true;
  rolling_.AddDay(it->second.far, it->second.near);
  if (day >= 0) quality_.AddDay(it->second.far, it->second.near);
  open_.erase(it);
  if (day >= 0 && rolling_.WindowFull()) {
    outcome.classification = rolling_.Classify();
  }
  return outcome;
}

}  // namespace manic::infer
