#include "infer/level_shift.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "stats/descriptive.h"
#include "stats/special.h"
#include "stats/tests.h"

namespace manic::infer {

namespace {

// Average variance over a moving window of length l (the paper's sigma^2
// estimate, robust to regime changes because each window is short).
double AverageMovingVariance(std::span<const double> v, int l) {
  if (static_cast<int>(v.size()) < l || l < 2) return stats::Variance(v);
  double acc = 0.0;
  std::size_t windows = 0;
  for (std::size_t i = 0; i + static_cast<std::size_t>(l) <= v.size(); ++i) {
    acc += stats::Variance(v.subspan(i, static_cast<std::size_t>(l)));
    ++windows;
  }
  return windows == 0 ? 0.0 : acc / static_cast<double>(windows);
}

}  // namespace

double LevelShiftResult::CongestedSeconds(TimeSec t0, TimeSec t1) const noexcept {
  double total = 0.0;
  for (const LevelShiftEvent& e : events) {
    const TimeSec lo = std::max(t0, e.start);
    const TimeSec hi = std::min(t1, e.end);
    if (hi > lo) total += static_cast<double>(hi - lo);
  }
  return total;
}

bool LevelShiftResult::IsCongestedAt(TimeSec t) const noexcept {
  for (const LevelShiftEvent& e : events) {
    if (t >= e.start && t < e.end) return true;
  }
  return false;
}

LevelShiftResult DetectLevelShifts(const stats::TimeSeries& series,
                                   const LevelShiftConfig& config) {
  LevelShiftResult result;
  const std::vector<double> v = series.Values();
  const int l = config.cutoff_len;
  const int n = static_cast<int>(v.size());
  if (n < 2 * l) return result;

  const double sigma2 = AverageMovingVariance(v, l);
  result.sigma = std::sqrt(sigma2);
  const double t_crit =
      stats::StudentTCritical(static_cast<double>(2 * l - 2), config.alpha);
  result.delta = t_crit * std::sqrt(2.0 * sigma2 / static_cast<double>(l));

  // Huber-weighted mean difference across each candidate boundary.
  std::vector<double> diff(static_cast<std::size_t>(n), 0.0);
  const std::span<const double> vs(v);
  for (int i = l; i + l <= n; ++i) {
    const double m1 = stats::HuberMean(
        vs.subspan(static_cast<std::size_t>(i - l), static_cast<std::size_t>(l)),
        result.sigma, config.huber_p);
    const double m2 = stats::HuberMean(
        vs.subspan(static_cast<std::size_t>(i), static_cast<std::size_t>(l)),
        result.sigma, config.huber_p);
    diff[static_cast<std::size_t>(i)] = m2 - m1;
  }

  // Shift points: |diff| exceeds delta and is the local maximum within
  // +/- l/2 (avoids a cluster of boundaries for one transition).
  std::vector<int> shifts;
  const int radius = std::max(1, l / 2);
  for (int i = l; i + l <= n; ++i) {
    const double d = std::fabs(diff[static_cast<std::size_t>(i)]);
    if (d < result.delta) continue;
    bool is_peak = true;
    for (int k = std::max(l, i - radius); k <= std::min(n - l, i + radius);
         ++k) {
      const double dk = std::fabs(diff[static_cast<std::size_t>(k)]);
      if (dk > d || (dk == d && k < i)) {
        is_peak = k == i;
        if (!is_peak) break;
      }
    }
    if (is_peak) shifts.push_back(i);
  }
  for (const int s : shifts) {
    result.shift_points.push_back(series[static_cast<std::size_t>(s)].t);
  }

  // Segment levels between shifts.
  struct Segment {
    int begin = 0;
    int end = 0;
    double level = 0.0;
  };
  std::vector<Segment> segments;
  int begin = 0;
  for (std::size_t k = 0; k <= shifts.size(); ++k) {
    const int end = k < shifts.size() ? shifts[k] : n;
    if (end > begin) {
      const double level = stats::HuberMean(
          vs.subspan(static_cast<std::size_t>(begin),
                     static_cast<std::size_t>(end - begin)),
          result.sigma, config.huber_p);
      segments.push_back({begin, end, level});
    }
    begin = end;
  }
  if (segments.empty()) return result;

  double baseline = segments.front().level;
  for (const Segment& s : segments) baseline = std::min(baseline, s.level);

  // Elevated runs: consecutive segments >= baseline + delta/2, minimum
  // duration l/2 bins.
  const double elevation =
      baseline + std::max(result.delta, config.min_elevation_ms);
  const int min_bins = std::max(1, l / 2);
  std::size_t i = 0;
  while (i < segments.size()) {
    if (segments[i].level < elevation) {
      ++i;
      continue;
    }
    std::size_t j = i;
    double level_acc = 0.0;
    int bins = 0;
    while (j < segments.size() && segments[j].level >= elevation) {
      level_acc += segments[j].level * (segments[j].end - segments[j].begin);
      bins += segments[j].end - segments[j].begin;
      ++j;
    }
    if (bins >= min_bins) {
      LevelShiftEvent event;
      event.start = series[static_cast<std::size_t>(segments[i].begin)].t;
      const int end_bin = segments[j - 1].end;
      event.end = end_bin < n ? series[static_cast<std::size_t>(end_bin)].t
                              : series[static_cast<std::size_t>(n - 1)].t +
                                    config.bin_width;
      event.baseline_ms = baseline;
      event.elevated_ms = level_acc / bins;
      result.events.push_back(event);
    }
    i = j;
  }
  return result;
}

}  // namespace manic::infer
