#include "infer/data_quality.h"

namespace manic::infer {

DataQuality AssessGrids(const DayGrid& far, const DayGrid& near) {
  DataQuality q;
  q.total_days = far.days();
  const std::int64_t total =
      static_cast<std::int64_t>(far.days()) * far.intervals();
  if (total == 0) return q;

  std::int64_t far_present = 0;
  std::int64_t near_present = 0;
  int gap = 0;
  bool prev_day_observed = false;
  for (int d = 0; d < far.days(); ++d) {
    bool day_observed = false;
    for (int i = 0; i < far.intervals(); ++i) {
      if (DayGrid::Missing(far.At(d, i))) {
        ++gap;
        q.longest_gap_intervals = std::max(q.longest_gap_intervals, gap);
      } else {
        gap = 0;
        ++far_present;
        day_observed = true;
      }
      if (d < near.days() && i < near.intervals() &&
          !DayGrid::Missing(near.At(d, i))) {
        ++near_present;
      }
    }
    if (day_observed) ++q.days_observed;
    if (d > 0 && day_observed != prev_day_observed) ++q.vp_churn_events;
    prev_day_observed = day_observed;
  }
  q.far_coverage_frac = static_cast<double>(far_present) / total;
  q.near_coverage_frac = static_cast<double>(near_present) / total;
  return q;
}

}  // namespace manic::infer
