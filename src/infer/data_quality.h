// Per-link data-quality verdict reported beside every inference (§5, §7:
// monitors churn, ICMP gets filtered, probing has gaps). Instead of letting
// a sparse series silently produce a false negative — or a lucky alignment
// of surviving bins a false positive — the pipeline quantifies how much of
// the analysis window was actually observed and rejects links whose
// evidence is too thin, the automated analogue of the paper's operator
// validation.
#pragma once

#include "infer/autocorr.h"

namespace manic::infer {

struct DataQuality {
  double far_coverage_frac = 0.0;   // far-side bins present / total bins
  double near_coverage_frac = 0.0;  // near-side bins present / total bins
  int longest_gap_intervals = 0;    // longest run of missing far bins
                                    // (time-ordered across day boundaries)
  int days_observed = 0;            // days with at least one far bin
  int total_days = 0;
  // Day-level far-side appearances/disappearances: transitions between
  // observed and unobserved days. 0 for an always-on VP; a mid-study outage
  // contributes 2 (vanish + return).
  int vp_churn_events = 0;

  bool Acceptable(const DataQualityConfig& config) const noexcept {
    return far_coverage_frac >= config.min_coverage_frac &&
           longest_gap_intervals <= config.max_gap_intervals &&
           days_observed >= config.min_days_observed;
  }
};

// Assesses the grids an inference consumed (identical dimensions required —
// the same precondition as AnalyzeWindow).
DataQuality AssessGrids(const DayGrid& far, const DayGrid& near);

}  // namespace manic::infer
