// Level-shift congestion detection (§4.1): a CUSUM-flavoured change-point
// detector over 5-minute-binned minimum latencies. Given cutoff length l
// (deployment value 12 bins = 1 hour) the detector:
//   1. estimates the series' average variance sigma^2 as the mean variance
//      over a moving window of length l,
//   2. derives the minimum mean difference Delta between two adjacent
//      length-l regimes that is significant under Student's t at 95%,
//   3. computes Huber-weighted means (tuning parameter P, deployment P=1)
//      of the two regimes flanking every candidate boundary and marks a
//      level shift where their difference exceeds Delta and is a local
//      maximum,
//   4. segments the series at the shifts and reports maximal runs of
//      elevated segments (level above the baseline segment by >= Delta/2)
//      as congestion episodes of duration >= l/2 bins.
// The paper ran this weekly to trigger reactive loss probing (§3.3).
#pragma once

#include <vector>

#include "stats/timeseries.h"

namespace manic::infer {

using stats::TimeSec;

struct LevelShiftConfig {
  int cutoff_len = 12;      // l: regime length in bins (12 x 5 min = 1 h)
  double huber_p = 1.0;     // P: outlier tolerance in standard deviations
  double alpha = 0.05;      // significance level for the t-test threshold
  TimeSec bin_width = 300;  // seconds per bin (5 minutes)
  // Minimum level elevation (ms) above the baseline for a segment to count
  // as congested. The statistical Delta alone admits sub-millisecond
  // "shifts" on long low-noise series (multiple-comparison effect); real
  // queueing episodes move latency by milliseconds.
  double min_elevation_ms = 3.0;
};

struct LevelShiftEvent {
  TimeSec start = 0;            // inclusive
  TimeSec end = 0;              // exclusive
  double baseline_ms = 0.0;     // series baseline level
  double elevated_ms = 0.0;     // mean level during the episode
  double DurationSec() const noexcept { return static_cast<double>(end - start); }
};

struct LevelShiftResult {
  std::vector<TimeSec> shift_points;    // boundaries where the level moved
  std::vector<LevelShiftEvent> events;  // elevated episodes
  double sigma = 0.0;                   // estimated noise std-dev
  double delta = 0.0;                   // minimum significant mean difference
  bool HasCongestion() const noexcept { return !events.empty(); }
  // Total congested seconds in [t0, t1).
  double CongestedSeconds(TimeSec t0, TimeSec t1) const noexcept;
  bool IsCongestedAt(TimeSec t) const noexcept;
};

// Runs the detector over a series of per-bin minimum latencies (time-binned
// already, e.g. by TimeSeries::Bin(300, BinAgg::kMin)).
LevelShiftResult DetectLevelShifts(const stats::TimeSeries& binned_min_rtt,
                                   const LevelShiftConfig& config = {});

}  // namespace manic::infer
