// Per-shard inference engine: the live counterpart of the batch study
// driver's daily loop. Every (link, VP) pair owns an infer::StreamingClassifier
// whose open-day bins fill one sample at a time; when the service closes a
// day, the engine finalizes each pair, merges the asserting VPs exactly as
// the batch loop does (mean fraction over recurring-asserting VPs, verdict
// emitted for every link with at least one full-window VP), and grades the
// link's DataQuality as of that day. Links are partitioned across shards by
// the service, so one engine always sees every VP of the links it owns —
// the merge never crosses a shard boundary.
//
// Determinism contract: both maps are ordered, so iteration (and therefore
// the floating-point summation order of per-VP fractions) is ascending
// (link, vp) — the same order as the batch driver's pair list, which the
// topology builder emits in ascending VP order.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "infer/autocorr.h"
#include "infer/data_quality.h"
#include "infer/streaming.h"
#include "serve/sample.h"
#include "serve/verdict.h"

namespace manic::serve {

struct EngineConfig {
  infer::AutocorrConfig autocorr;
  // Day-link congestion verdict threshold on the merged fraction
  // (analysis::kDayLinkThreshold).
  double congested_threshold_frac = 0.04;
};

class ShardEngine {
 public:
  explicit ShardEngine(EngineConfig config = {});

  // O(1): routes one sample into its pair's open-day bins. Loss-rate
  // samples are counted but do not feed inference (they live in the raw
  // store only); RTT and missing-marker kinds land in minimum bins.
  void Ingest(const Sample& s);

  // Finalizes `day` for every pair and returns the merged per-link verdicts
  // in ascending link order. Days must be closed in ascending order; pairs
  // that saw no record for the day are skipped (invisible, exactly like a
  // batch pair outside its visibility window).
  std::vector<VerdictRecord> CloseDay(std::int64_t day);

  // Per-link DataQuality as of `total_days` study days, folded across the
  // VPs that measured the link (pairs that never saw a bin are skipped).
  std::map<topo::LinkId, infer::DataQuality> QualitySnapshot(
      int total_days) const;

  std::uint64_t samples_ingested() const noexcept { return samples_; }
  // Samples dropped because their day was already closed (a closed day can
  // never be finalized again, so binning them would only leak open-day
  // state). The service filters these upstream; this is the engine's own
  // guard for direct users.
  std::uint64_t late_samples() const noexcept { return late_; }
  std::size_t links_tracked() const noexcept { return links_.size(); }

 private:
  EngineConfig config_;
  std::map<topo::LinkId, std::map<topo::VpId, infer::StreamingClassifier>>
      links_;
  std::uint64_t samples_ = 0;
  std::uint64_t late_ = 0;
  bool has_closed_ = false;
  std::int64_t closed_through_ = 0;
};

}  // namespace manic::serve
