#include "serve/codec.h"

#include <bit>
#include <cstring>
#include <limits>

namespace manic::serve {
namespace {

// Wire counters are u32; the DataQuality fields are int. A hostile counter
// above INT_MAX must saturate, not wrap negative — a negative gap/churn
// count would corrupt every downstream quality fraction.
int SaturateToInt(std::uint32_t wire_count) {
  constexpr auto kIntMax =
      static_cast<std::uint32_t>(std::numeric_limits<int>::max());
  if (wire_count > kIntMax) return std::numeric_limits<int>::max();
  return static_cast<int>(wire_count);
}

// All integers travel little-endian regardless of host order; the supported
// targets are little-endian, so the byte loops below compile to plain loads
// and stores.
template <typename U>
void PutLE(std::string* buf, U v) {
  char bytes[sizeof(U)];
  for (std::size_t i = 0; i < sizeof(U); ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  buf->append(bytes, sizeof(U));
}

template <typename U>
U GetLE(const void* p) {
  const unsigned char* b = static_cast<const unsigned char*>(p);
  U v = 0;
  for (std::size_t i = 0; i < sizeof(U); ++i) {
    v |= static_cast<U>(b[i]) << (8 * i);
  }
  return v;
}

bool ValidMsgType(std::uint8_t raw) {
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kHello:
    case MsgType::kHelloAck:
    case MsgType::kSubmitBatch:
    case MsgType::kSubmitAck:
    case MsgType::kQueryPoint:
    case MsgType::kQueryRange:
    case MsgType::kQueryQuality:
    case MsgType::kQueryStats:
    case MsgType::kVerdicts:
    case MsgType::kQuality:
    case MsgType::kStats:
    case MsgType::kError:
    case MsgType::kFlush:
    case MsgType::kFlushAck:
    case MsgType::kGetWatermark:
    case MsgType::kWatermark:
      return true;
  }
  return false;
}

// Bytes of one encoded Sample (pinned: `wire Sample` in layout.txt).
constexpr std::size_t kWireSampleBytes = 21;

// Writes `word` little-endian at *dst and advances the cursor in place.
// The raw-pointer form exists for EncodeSubmitBatchTo, where the frame
// size is known up front and per-sample string appends dominate the WAL
// flush cost.
template <typename U>
void StoreLE(char** dst, U word) {
  char* raw = *dst;
  for (std::size_t i = 0; i < sizeof(U); ++i) {
    raw[i] = static_cast<char>((word >> (8 * i)) & 0xFF);
  }
  *dst = raw + sizeof(U);
}

bool GetSample(Decoder* d, Sample* s) {
  std::uint8_t kind = 0;
  if (!d->GetI64(&s->t) || !d->GetU32(&s->link) || !d->GetU32(&s->vp) ||
      !d->GetU8(&kind) || !d->GetF32(&s->value)) {
    return false;
  }
  if (kind > kMaxSampleKind) return false;
  s->kind = static_cast<SampleKind>(kind);
  return true;
}

void PutVerdict(Encoder* e, const VerdictRecord& v) {
  e->PutI64(v.day);
  e->PutU32(v.link);
  // Encode side: the flag bits are three local bools (value <= 7 by
  // construction), not wire input.
  // manic-lint: allow(trust)
  const std::uint8_t flags = static_cast<std::uint8_t>(
      (v.recurring ? 1u : 0u) | (v.congested ? 2u : 0u) |
      (v.quality_ok ? 4u : 0u));
  e->PutU8(flags);
  e->PutF64(v.fraction);
  e->PutU32(v.contributors);
  e->PutU32(v.asserting);
  e->PutF64(v.far_coverage_frac);
}

bool GetVerdict(Decoder* d, VerdictRecord* v) {
  std::uint8_t flags = 0;
  if (!d->GetI64(&v->day) || !d->GetU32(&v->link) || !d->GetU8(&flags) ||
      !d->GetF64(&v->fraction) || !d->GetU32(&v->contributors) ||
      !d->GetU32(&v->asserting) || !d->GetF64(&v->far_coverage_frac)) {
    return false;
  }
  if (flags > 7) return false;
  v->recurring = (flags & 1u) != 0;
  v->congested = (flags & 2u) != 0;
  v->quality_ok = (flags & 4u) != 0;
  return true;
}

}  // namespace

// ---- Encoder ----------------------------------------------------------------

void Encoder::PutU8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v & 0xFF));
}
void Encoder::PutU16(std::uint16_t v) { PutLE(&buf_, v); }
void Encoder::PutU32(std::uint32_t v) { PutLE(&buf_, v); }
void Encoder::PutU64(std::uint64_t v) { PutLE(&buf_, v); }
void Encoder::PutI64(std::int64_t v) {
  PutLE(&buf_, static_cast<std::uint64_t>(v));
}
void Encoder::PutF32(float v) { PutLE(&buf_, std::bit_cast<std::uint32_t>(v)); }
void Encoder::PutF64(double v) {
  PutLE(&buf_, std::bit_cast<std::uint64_t>(v));
}
void Encoder::PutBytes(std::string_view bytes) { buf_.append(bytes); }

// ---- Decoder ----------------------------------------------------------------

const void* Decoder::Take(std::size_t n) {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const void* p = buf_.data() + pos_;
  pos_ += n;
  return p;
}

bool Decoder::GetU8(std::uint8_t* v) {
  const void* p = Take(1);
  if (p == nullptr) return false;
  *v = static_cast<std::uint8_t>(*static_cast<const char*>(p));
  return true;
}
bool Decoder::GetU16(std::uint16_t* v) {
  const void* p = Take(2);
  if (p == nullptr) return false;
  *v = GetLE<std::uint16_t>(p);
  return true;
}
bool Decoder::GetU32(std::uint32_t* v) {
  const void* p = Take(4);
  if (p == nullptr) return false;
  *v = GetLE<std::uint32_t>(p);
  return true;
}
bool Decoder::GetU64(std::uint64_t* v) {
  const void* p = Take(8);
  if (p == nullptr) return false;
  *v = GetLE<std::uint64_t>(p);
  return true;
}
bool Decoder::GetI64(std::int64_t* v) {
  std::uint64_t u = 0;
  if (!GetU64(&u)) return false;
  *v = static_cast<std::int64_t>(u);
  return true;
}
bool Decoder::GetF32(float* v) {
  std::uint32_t u = 0;
  if (!GetU32(&u)) return false;
  *v = std::bit_cast<float>(u);
  return true;
}
bool Decoder::GetF64(double* v) {
  std::uint64_t u = 0;
  if (!GetU64(&u)) return false;
  *v = std::bit_cast<double>(u);
  return true;
}
bool Decoder::GetBytes(std::size_t n, std::string_view* out) {
  const void* p = Take(n);
  if (p == nullptr) return false;
  *out = std::string_view(static_cast<const char*>(p), n);
  return true;
}

// ---- framing ----------------------------------------------------------------

std::string EncodeFrame(MsgType type, std::string_view payload) {
  std::string frame;
  frame.reserve(5 + payload.size());
  PutLE(&frame, static_cast<std::uint32_t>(1 + payload.size()));
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  return frame;
}

void FrameAssembler::Feed(std::string_view bytes) {
  if (corrupt_) return;
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

bool FrameAssembler::Next(MsgType* type, std::string* payload) {
  if (corrupt_) return false;
  if (buf_.size() - pos_ < 4) return false;
  const std::uint32_t len = GetLE<std::uint32_t>(buf_.data() + pos_);
  if (len == 0 || len > kMaxFramePayload + 1) {
    corrupt_ = true;
    return false;
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len)) return false;
  const std::uint8_t raw_type =
      static_cast<std::uint8_t>(buf_[pos_ + 4]);
  if (!ValidMsgType(raw_type)) {
    corrupt_ = true;
    return false;
  }
  *type = static_cast<MsgType>(raw_type);
  payload->assign(buf_, pos_ + 5, len - 1);
  pos_ += 4 + static_cast<std::size_t>(len);
  return true;
}

// ---- messages ---------------------------------------------------------------

std::string EncodeHello() {
  Encoder e;
  e.PutU32(kProtocolVersion);
  return EncodeFrame(MsgType::kHello, e.data());
}

bool DecodeHello(std::string_view payload, std::uint32_t* version) {
  Decoder d(payload);
  return d.GetU32(version) && d.AtEnd();
}

std::string EncodeHelloAck(std::uint32_t shards) {
  Encoder e;
  e.PutU32(kProtocolVersion);
  e.PutU32(shards);
  return EncodeFrame(MsgType::kHelloAck, e.data());
}

bool DecodeHelloAck(std::string_view payload, std::uint32_t* version,
                    std::uint32_t* shards) {
  Decoder d(payload);
  return d.GetU32(version) && d.GetU32(shards) && d.AtEnd();
}

std::string EncodeSubmitBatch(std::span<const Sample> samples) {
  std::string frame;
  EncodeSubmitBatchTo(samples, &frame);
  return frame;
}

void EncodeSubmitBatchTo(std::span<const Sample> samples, std::string* out) {
  // Samples encode at a fixed width, so the whole frame is sized up front
  // and filled through one raw cursor: this runs for every WAL flush, and
  // growth-checked per-field appends are most of the encode cost.
  const auto count = static_cast<std::uint32_t>(samples.size());
  const std::size_t base = out->size();
  out->resize(base + 4 + 1 + 4 + kWireSampleBytes * count);
  char* cursor = out->data() + base;
  StoreLE(&cursor, static_cast<std::uint32_t>(1 + 4 + kWireSampleBytes * count));
  *cursor++ = static_cast<char>(MsgType::kSubmitBatch);
  StoreLE(&cursor, count);
  for (const Sample& s : samples) {
    StoreLE(&cursor, static_cast<std::uint64_t>(s.t));
    StoreLE(&cursor, s.link);
    StoreLE(&cursor, s.vp);
    // Encode side: `s` is a locally built Sample (kind is a validated
    // enum), not bytes off the wire.
    // manic-lint: allow(trust)
    *cursor++ = static_cast<char>(static_cast<std::uint8_t>(s.kind));
    StoreLE(&cursor, std::bit_cast<std::uint32_t>(s.value));
  }
}

bool DecodeSubmitBatch(std::string_view payload, std::vector<Sample>* out) {
  Decoder d(payload);
  std::uint32_t count = 0;
  if (!d.GetU32(&count)) return false;
  // Fixed bytes per encoded sample; reject counts the payload cannot hold.
  if (payload.size() < 4 + static_cast<std::size_t>(count) * kWireSampleBytes) {
    return false;
  }
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Sample s;
    if (!GetSample(&d, &s)) return false;
    out->push_back(s);
  }
  return d.AtEnd();
}

std::string EncodeSubmitAck(std::uint64_t accepted) {
  Encoder e;
  e.PutU64(accepted);
  return EncodeFrame(MsgType::kSubmitAck, e.data());
}

bool DecodeSubmitAck(std::string_view payload, std::uint64_t* accepted) {
  Decoder d(payload);
  return d.GetU64(accepted) && d.AtEnd();
}

std::string EncodeQueryPoint(topo::LinkId link, TimeSec t) {
  Encoder e;
  e.PutU32(link);
  e.PutI64(t);
  return EncodeFrame(MsgType::kQueryPoint, e.data());
}

bool DecodeQueryPoint(std::string_view payload, topo::LinkId* link,
                      TimeSec* t) {
  Decoder d(payload);
  return d.GetU32(link) && d.GetI64(t) && d.AtEnd();
}

std::string EncodeQueryRange(topo::LinkId link, TimeSec t0, TimeSec t1) {
  Encoder e;
  e.PutU32(link);
  e.PutI64(t0);
  e.PutI64(t1);
  return EncodeFrame(MsgType::kQueryRange, e.data());
}

bool DecodeQueryRange(std::string_view payload, topo::LinkId* link,
                      TimeSec* t0, TimeSec* t1) {
  Decoder d(payload);
  return d.GetU32(link) && d.GetI64(t0) && d.GetI64(t1) && d.AtEnd();
}

std::string EncodeQueryQuality(topo::LinkId link) {
  Encoder e;
  e.PutU32(link);
  return EncodeFrame(MsgType::kQueryQuality, e.data());
}

bool DecodeQueryQuality(std::string_view payload, topo::LinkId* link) {
  Decoder d(payload);
  return d.GetU32(link) && d.AtEnd();
}

std::string EncodeQueryStats() {
  return EncodeFrame(MsgType::kQueryStats, {});
}

std::string EncodeFlush() { return EncodeFrame(MsgType::kFlush, {}); }

std::string EncodeFlushAck(std::int64_t last_closed_day) {
  Encoder e;
  e.PutI64(last_closed_day);
  return EncodeFrame(MsgType::kFlushAck, e.data());
}

void EncodeFlushAckTo(std::int64_t last_closed_day, std::string* out) {
  PutLE(out, static_cast<std::uint32_t>(1 + 8));
  out->push_back(static_cast<char>(MsgType::kFlushAck));
  PutLE(out, static_cast<std::uint64_t>(last_closed_day));
}

bool DecodeFlushAck(std::string_view payload, std::int64_t* last_closed_day) {
  Decoder d(payload);
  return d.GetI64(last_closed_day) && d.AtEnd();
}

std::string EncodeGetWatermark() {
  return EncodeFrame(MsgType::kGetWatermark, {});
}

std::string EncodeWatermark(const WatermarkInfo& info) {
  Encoder e;
  e.PutU64(info.samples_consumed);
  e.PutI64(info.watermark_t);
  e.PutI64(info.last_closed_day);
  // Encode side: the flag bits are two local bools (value <= 3 by
  // construction), not wire input.
  // manic-lint: allow(trust)
  const std::uint8_t flags = static_cast<std::uint8_t>(
      (info.degraded ? 1u : 0u) | (info.saw_sample ? 2u : 0u));
  e.PutU8(flags);
  return EncodeFrame(MsgType::kWatermark, e.data());
}

bool DecodeWatermark(std::string_view payload, WatermarkInfo* info) {
  Decoder d(payload);
  std::uint8_t flags = 0;
  if (!d.GetU64(&info->samples_consumed) || !d.GetI64(&info->watermark_t) ||
      !d.GetI64(&info->last_closed_day) || !d.GetU8(&flags) || !d.AtEnd()) {
    return false;
  }
  if (flags > 3) return false;
  info->degraded = (flags & 1u) != 0;
  info->saw_sample = (flags & 2u) != 0;
  return true;
}

std::string EncodeVerdicts(std::span<const VerdictRecord> verdicts) {
  Encoder e;
  e.PutU32(static_cast<std::uint32_t>(verdicts.size()));
  for (const VerdictRecord& v : verdicts) PutVerdict(&e, v);
  return EncodeFrame(MsgType::kVerdicts, e.data());
}

bool DecodeVerdicts(std::string_view payload,
                    std::vector<VerdictRecord>* out) {
  Decoder d(payload);
  std::uint32_t count = 0;
  if (!d.GetU32(&count)) return false;
  // 37 bytes per encoded verdict.
  if (payload.size() < 4 + static_cast<std::size_t>(count) * 37) return false;
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    VerdictRecord v;
    if (!GetVerdict(&d, &v)) return false;
    out->push_back(v);
  }
  return d.AtEnd();
}

std::string EncodeQuality(bool found, const infer::DataQuality& quality) {
  Encoder e;
  e.PutU8(found ? 1 : 0);
  e.PutF64(quality.far_coverage_frac);
  e.PutF64(quality.near_coverage_frac);
  e.PutU32(static_cast<std::uint32_t>(quality.longest_gap_intervals));
  e.PutU32(static_cast<std::uint32_t>(quality.days_observed));
  e.PutU32(static_cast<std::uint32_t>(quality.total_days));
  e.PutU32(static_cast<std::uint32_t>(quality.vp_churn_events));
  return EncodeFrame(MsgType::kQuality, e.data());
}

bool DecodeQuality(std::string_view payload, bool* found,
                   infer::DataQuality* quality) {
  Decoder d(payload);
  std::uint8_t f = 0;
  std::uint32_t gap = 0, observed = 0, total = 0, churn = 0;
  if (!d.GetU8(&f) || !d.GetF64(&quality->far_coverage_frac) ||
      !d.GetF64(&quality->near_coverage_frac) || !d.GetU32(&gap) ||
      !d.GetU32(&observed) || !d.GetU32(&total) || !d.GetU32(&churn) ||
      !d.AtEnd() || f > 1) {
    return false;
  }
  *found = f == 1;
  quality->longest_gap_intervals = SaturateToInt(gap);
  quality->days_observed = SaturateToInt(observed);
  quality->total_days = SaturateToInt(total);
  quality->vp_churn_events = SaturateToInt(churn);
  return true;
}

std::string EncodeStats(const ServiceStats& stats) {
  Encoder e;
  e.PutU64(stats.samples);
  e.PutU64(stats.verdicts);
  e.PutU64(stats.links);
  e.PutI64(stats.last_closed_day);
  e.PutI64(stats.days_closed);
  e.PutU32(stats.shards);
  e.PutU64(stats.raw_points);
  e.PutU64(stats.samples_late);
  e.PutU64(stats.samples_rejected);
  return EncodeFrame(MsgType::kStats, e.data());
}

bool DecodeStats(std::string_view payload, ServiceStats* stats) {
  Decoder d(payload);
  return d.GetU64(&stats->samples) && d.GetU64(&stats->verdicts) &&
         d.GetU64(&stats->links) && d.GetI64(&stats->last_closed_day) &&
         d.GetI64(&stats->days_closed) && d.GetU32(&stats->shards) &&
         d.GetU64(&stats->raw_points) && d.GetU64(&stats->samples_late) &&
         d.GetU64(&stats->samples_rejected) && d.AtEnd();
}

std::string EncodeError(std::uint16_t code, std::string_view message) {
  // Clamp before encoding the length so the field never wraps.
  const std::string_view clamped = message.substr(0, 0xFFFF);
  Encoder e;
  e.PutU16(code);
  e.PutU16(static_cast<std::uint16_t>(clamped.size()));
  e.PutBytes(clamped);
  return EncodeFrame(MsgType::kError, e.data());
}

bool DecodeError(std::string_view payload, std::uint16_t* code,
                 std::string* message) {
  Decoder d(payload);
  std::uint16_t len = 0;
  std::string_view bytes;
  if (!d.GetU16(code) || !d.GetU16(&len) || !d.GetBytes(len, &bytes) ||
      !d.AtEnd()) {
    return false;
  }
  message->assign(bytes);
  return true;
}

}  // namespace manic::serve
