// A reconnecting wrapper around BlockingClient: capped exponential backoff
// with seeded jitter, socket timeouts, and watermark-driven resubmission so
// a client survives daemon crashes and restarts without double-ingesting.
//
// The resync contract: when a submit fails in transit, the daemon may or
// may not have consumed the batch (the ack was lost either way). Blindly
// resending would double-ingest, so Submit() reports kResync after
// reconnecting — the caller asks GetWatermark() for samples_consumed and
// resumes its deterministic stream at that offset. The WAL guarantees the
// watermark counts exactly the durable samples, which is what makes the
// resubmission idempotent (see tools/crashloop for the end-to-end harness).
//
// Jitter is seeded (SeedTree), not wall-clock random: two crashloop runs
// with the same seed back off identically, keeping the harness replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "runtime/seed_tree.h"
#include "serve/daemon.h"

namespace manic::serve {

struct RetryPolicy {
  int max_attempts = 8;                  // reconnect attempts per operation
  std::uint32_t base_backoff_ms = 10;    // first retry delay
  std::uint32_t max_backoff_ms = 2000;   // exponential growth cap
  std::uint32_t socket_timeout_ms = 5000;  // SO_RCVTIMEO / SO_SNDTIMEO
  std::uint64_t seed = 1;                // jitter stream root
};

// What a retried submit did. kResync is the load-bearing case: the batch's
// fate is unknown (connection died before the ack), the client has already
// reconnected, and the caller must consult the watermark before resending.
enum class [[nodiscard]] RetryOutcome : std::uint8_t {
  kOk,      // acknowledged
  kResync,  // reconnected after an in-flight failure: watermark-resync first
  kShed,    // daemon degraded (WAL out of space): do not resend, back off
  kFailed,  // attempts exhausted or protocol error: give up
};

class RetryingClient {
 public:
  // port_fn re-resolves the daemon's port before each connect attempt — a
  // restarted daemon binds a fresh ephemeral port, announced out of band
  // (crashloop re-reads the port file).
  RetryingClient(std::function<std::uint16_t()> port_fn,
                 RetryPolicy policy = {});

  // Establishes the connection (with backoff); true when connected.
  bool Connect();
  void Close();
  bool connected() const noexcept { return client_.connected(); }
  std::uint64_t reconnects() const noexcept { return reconnects_; }

  RetryOutcome Submit(std::span<const Sample> samples);
  // Retried queries: transport failures reconnect and retry, protocol
  // failures give up (nullopt).
  std::optional<WatermarkInfo> GetWatermark();
  std::optional<std::int64_t> Flush();

  // The wrapped client, for one-shot calls (queries, stats) where the
  // caller handles failure itself.
  BlockingClient& raw() noexcept { return client_; }

 private:
  bool Reconnect();
  void Backoff(int attempt);

  std::function<std::uint16_t()> port_fn_;
  RetryPolicy policy_;
  BlockingClient client_;
  runtime::SeedTree jitter_;
  std::uint64_t backoff_draws_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace manic::serve
