#include "serve/ingest.h"

#include <algorithm>
#include <limits>
#include <string>

namespace manic::serve {
namespace {

std::uint64_t PairKey(topo::LinkId link, topo::VpId vp) {
  return (static_cast<std::uint64_t>(link) << 32) | vp;
}

tsdb::TagSet PairTags(topo::LinkId link, topo::VpId vp) {
  tsdb::TagSet tags;
  tags.Set("link", std::to_string(link));
  tags.Set("vp", std::to_string(vp));
  return tags;
}

}  // namespace

IngestShard::IngestShard(IngestShardConfig config)
    : config_(config),
      ring_(config.ring_capacity),
      engine_(config.engine) {}

IngestShard::~IngestShard() { Stop(); }

void IngestShard::Start() {
  if (running_) return;
  running_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void IngestShard::Stop() {
  if (!running_) return;
  Msg stop;
  stop.kind = MsgKind::kStop;
  ring_.Push(stop);
  worker_.join();
  running_ = false;
}

void IngestShard::PushSample(const Sample& s) {
  Msg msg;
  msg.kind = MsgKind::kSample;
  msg.sample = s;
  ring_.Push(msg);
}

void IngestShard::PushCloseDay(std::int64_t day) {
  Msg msg;
  msg.kind = MsgKind::kCloseDay;
  msg.day = day;
  ring_.Push(msg);
}

void IngestShard::WaitClosed(std::int64_t day) {
  std::int64_t closed = closed_through_.load(std::memory_order_acquire);
  while (closed < day) {
    closed_through_.wait(closed, std::memory_order_acquire);
    closed = closed_through_.load(std::memory_order_acquire);
  }
}

std::vector<VerdictRecord> IngestShard::TakeDayVerdicts() {
  return std::move(day_verdicts_);
}

void IngestShard::WorkerLoop() {
  for (;;) {
    const Msg msg = ring_.PopBlocking();
    switch (msg.kind) {
      // The per-sample branch is the worker's steady state and carries the
      // linter's hot-path contract; day-close below is cold and exempt.
      // manic-lint: hot-path(begin)
      case MsgKind::kSample:
        engine_.Ingest(msg.sample);
        if (config_.store_raw) Store(msg.sample);
        samples_.fetch_add(1, std::memory_order_relaxed);
        break;
        // manic-lint: hot-path(end)
      case MsgKind::kCloseDay: {
        day_verdicts_ = engine_.CloseDay(msg.day);
        // Saturate the study day-count so an extreme day index cannot
        // overflow the int cast.
        quality_ = engine_.QualitySnapshot(
            msg.day >= 0
                ? static_cast<int>(std::min<std::int64_t>(
                      msg.day, std::numeric_limits<int>::max() - 1)) +
                      1
                : 0);
        if (config_.store_raw && config_.retention_horizon_s > 0) {
          const std::size_t dropped =
              db_.EnforceRetention("tslp_rtt", config_.retention_horizon_s) +
              db_.EnforceRetention("tslp_loss", config_.retention_horizon_s);
          raw_points_.fetch_sub(dropped, std::memory_order_relaxed);
        }
        closed_through_.store(msg.day, std::memory_order_release);
        closed_through_.notify_all();
        break;
      }
      case MsgKind::kStop:
        return;
    }
  }
}

tsdb::Database::SeriesHandle IngestShard::RttHandle(topo::LinkId link,
                                                    topo::VpId vp,
                                                    bool far_side) {
  auto& cache = far_side ? far_handles_ : near_handles_;
  const std::uint64_t key = PairKey(link, vp);
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  tsdb::TagSet tags = PairTags(link, vp);
  tags.Set("side", far_side ? "far" : "near");
  const tsdb::Database::SeriesHandle handle = db_.OpenSeries("tslp_rtt", tags);
  cache.emplace(key, handle);
  return handle;
}

tsdb::Database::SeriesHandle IngestShard::LossHandle(topo::LinkId link,
                                                     topo::VpId vp) {
  const std::uint64_t key = PairKey(link, vp);
  const auto it = loss_handles_.find(key);
  if (it != loss_handles_.end()) return it->second;
  const tsdb::Database::SeriesHandle handle =
      db_.OpenSeries("tslp_loss", PairTags(link, vp));
  loss_handles_.emplace(key, handle);
  return handle;
}

void IngestShard::Store(const Sample& s) {
  switch (s.kind) {
    case SampleKind::kFarRtt:
    case SampleKind::kNearRtt:
      db_.Append(RttHandle(s.link, s.vp, s.kind == SampleKind::kFarRtt), s.t,
                 s.value);
      raw_points_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SampleKind::kFarMissing:
    case SampleKind::kNearMissing:
      db_.AppendMissing(
          RttHandle(s.link, s.vp, s.kind == SampleKind::kFarMissing), s.t);
      break;
    case SampleKind::kLossRate:
      db_.Append(LossHandle(s.link, s.vp), s.t, s.value);
      raw_points_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

}  // namespace manic::serve
