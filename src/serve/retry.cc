#include "serve/retry.h"

#include <time.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace manic::serve {
namespace {

void SleepMs(std::uint64_t ms) {
  timespec req{};
  req.tv_sec = static_cast<time_t>(ms / 1000);
  req.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000L;
  while (::nanosleep(&req, &req) != 0 && errno == EINTR) {
  }
}

}  // namespace

RetryingClient::RetryingClient(std::function<std::uint16_t()> port_fn,
                               RetryPolicy policy)
    : port_fn_(std::move(port_fn)),
      policy_(policy),
      jitter_(runtime::SeedTree(policy.seed).Child("retry-jitter")) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  client_.set_timeout_ms(policy_.socket_timeout_ms);
}

bool RetryingClient::Connect() {
  if (client_.connected()) return true;
  return Reconnect();
}

void RetryingClient::Close() { client_.Close(); }

void RetryingClient::Backoff(int attempt) {
  // Exponential with full lower-half jitter: delay in [cap/2, cap) where
  // cap = min(max, base << attempt). The draw comes off the seeded jitter
  // stream, so backoff schedules replay exactly under a fixed seed.
  std::uint64_t cap = policy_.base_backoff_ms;
  for (int i = 0; i < attempt && cap < policy_.max_backoff_ms; ++i) cap *= 2;
  cap = std::min<std::uint64_t>(cap, policy_.max_backoff_ms);
  if (cap == 0) return;
  const double unit = jitter_.LeafUnit(backoff_draws_++);
  SleepMs(cap / 2 + static_cast<std::uint64_t>(unit * double(cap - cap / 2)));
}

bool RetryingClient::Reconnect() {
  client_.Close();
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) Backoff(attempt - 1);
    if (client_.Connect(port_fn_())) {
      ++reconnects_;
      return true;
    }
  }
  return false;
}

RetryOutcome RetryingClient::Submit(std::span<const Sample> samples) {
  // A reconnect *before* the send is unambiguous — nothing was in flight —
  // so it does not force a resync on its own.
  if (!client_.connected() && !Reconnect()) return RetryOutcome::kFailed;
  if (client_.Submit(samples)) return RetryOutcome::kOk;
  switch (client_.last_error()) {
    case ClientError::kDegraded:
      return RetryOutcome::kShed;
    case ClientError::kProtocol:
      return RetryOutcome::kFailed;  // resending malformed traffic can't help
    default:
      break;  // transport trouble: the batch's fate is unknown
  }
  client_.Close();
  if (!Reconnect()) return RetryOutcome::kFailed;
  return RetryOutcome::kResync;
}

std::optional<WatermarkInfo> RetryingClient::GetWatermark() {
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (!client_.connected() && !Reconnect()) return std::nullopt;
    if (auto info = client_.GetWatermark()) return info;
    if (client_.last_error() == ClientError::kProtocol) return std::nullopt;
    client_.Close();  // transport trouble: reconnect and ask again
  }
  return std::nullopt;
}

std::optional<std::int64_t> RetryingClient::Flush() {
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (!client_.connected() && !Reconnect()) return std::nullopt;
    if (auto day = client_.Flush()) return day;
    if (client_.last_error() == ClientError::kProtocol) return std::nullopt;
    // A flush is idempotent (closes through the watermark), so unlike a
    // submit it can simply be reissued after the reconnect.
    client_.Close();
  }
  return std::nullopt;
}

}  // namespace manic::serve
