#include "serve/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "serve/codec.h"

namespace manic::serve {
namespace {

constexpr char kMagic[] = "MANICWAL1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;
constexpr char kCleanMarker[] = "wal-clean";

std::string SegmentName(std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06u.seg", index);
  return name;
}

std::string CleanMarkerPath(const std::string& dir) {
  return dir + "/" + kCleanMarker;
}

// Segment index parsed from a "wal-NNNNNN.seg" file name; 0 = not a segment.
std::uint32_t SegmentIndexOf(const std::string& name) {
  if (name.size() != 14 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(10, 4, ".seg") != 0) {
    return 0;
  }
  std::uint32_t index = 0;
  for (std::size_t i = 4; i < 10; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return 0;
    index = index * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return index;
}

// Ascending list of (index, path) for every segment under dir.
std::vector<std::pair<std::uint32_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<std::uint32_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::uint32_t index = SegmentIndexOf(entry.path().filename());
    if (index != 0) segments.emplace_back(index, entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

WalWriter::~WalWriter() { Abandon(); }

WalStatus WalWriter::Open(const WalConfig& config) {
  Abandon();
  config_ = config;
  if (config_.segment_bytes == 0) config_.segment_bytes = 1;
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) return WalStatus::kIoError;
  // Appending again: the log is live, the previous clean shutdown is over.
  std::filesystem::remove(CleanMarkerPath(config_.dir), ec);
  next_segment_ = 1;
  for (const auto& [index, path] : ListSegments(config_.dir)) {
    if (index >= next_segment_) next_segment_ = index + 1;
  }
  return OpenSegment();
}

WalStatus WalWriter::OpenSegment() {
  const std::string path = config_.dir + "/" + SegmentName(next_segment_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd_ < 0) return errno == ENOSPC ? WalStatus::kNoSpace : WalStatus::kIoError;
  ++next_segment_;
  ++segments_opened_;
  segment_written_ = 0;
  return WriteAll(kMagic, kMagicLen);
}

// The WAL append fast path: runs once per consumed submit batch and per day
// close, so it is fenced by the linter's hot-path contract — the only I/O
// and allocation here are the explicitly justified durability calls below.
// manic-lint: hot-path(begin)
WalStatus WalWriter::WriteAll(const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    std::size_t attempt = len - off;
    if (config_.fault_hook != nullptr) {
      using Kind = runtime::IoFaultHook::WriteFault::Kind;
      const auto fault = config_.fault_hook->WriteAt(write_ops_++, attempt);
      switch (fault.kind) {
        case Kind::kPass:
          break;
        case Kind::kEintr:
          continue;  // the syscall "failed" with EINTR: retry, no bytes moved
        case Kind::kShort:
          attempt = std::max<std::size_t>(1, std::min(fault.short_len, attempt));
          break;
        case Kind::kEnospc:
          return WalStatus::kNoSpace;
      }
    }
    // The durability write itself — the one syscall this path exists for.
    // manic-lint: allow(hot-path)
    const ssize_t n = ::write(fd_, data + off, attempt);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == ENOSPC ? WalStatus::kNoSpace : WalStatus::kIoError;
    }
    off += static_cast<std::size_t>(n);
  }
  return WalStatus::kOk;
}

WalStatus WalWriter::AppendFrame(std::string_view frame, bool day_close) {
  if (fd_ < 0) return WalStatus::kIoError;
  if (config_.fault_hook != nullptr) {
    const std::int64_t crash = config_.fault_hook->CrashBytesAt(records_);
    if (crash >= 0) {
      // Kill point: emit the prescribed torn prefix, then die where a real
      // crash would — recovery sees a record cut mid-header or mid-payload.
      const std::size_t torn =
          std::min(frame.size(), static_cast<std::size_t>(crash));
      (void)WriteAll(frame.data(), torn);
      std::_Exit(42);
    }
  }
  const WalStatus written = WriteAll(frame.data(), frame.size());
  if (written != WalStatus::kOk) return written;
  ++records_;
  segment_written_ += frame.size();
  if (config_.fsync == WalFsync::kEveryAppend ||
      (day_close && config_.fsync == WalFsync::kDayClose)) {
    const WalStatus synced = FsyncNow();
    if (synced != WalStatus::kOk) return synced;
  }
  if (segment_written_ >= config_.segment_bytes) {
    // Seal the full segment (its bytes must outlive the rotation) and roll
    // to the next — a cold, once-per-64MiB branch.
    const WalStatus sealed = FsyncNow();
    if (sealed != WalStatus::kOk) return sealed;
    ::close(fd_);
    fd_ = -1;
    return OpenSegment();
  }
  return WalStatus::kOk;
}

WalStatus WalWriter::AppendSamples(std::span<const Sample> samples) {
  if (samples.empty()) return WalStatus::kOk;
  // frame_buf_ is reused append over append: amortized to zero allocation
  // once the high-water batch size has been seen.
  frame_buf_.clear();
  EncodeSubmitBatchTo(samples, &frame_buf_);
  return AppendFrame(frame_buf_, false);
}

WalStatus WalWriter::AppendClose(std::int64_t day) {
  frame_buf_.clear();
  EncodeFlushAckTo(day, &frame_buf_);
  return AppendFrame(frame_buf_, true);
}
// manic-lint: hot-path(end)

WalStatus WalWriter::FsyncNow() {
  if (config_.fault_hook != nullptr &&
      !config_.fault_hook->FsyncOkAt(fsync_ops_++)) {
    return WalStatus::kIoError;
  }
  // fdatasync, not fsync: recovery needs the appended bytes and the file
  // size (both covered), not the mtime — whose journal commit is most of
  // an ext4 fsync's cost on the day-close path.
  if (::fdatasync(fd_) != 0) {
    return errno == ENOSPC ? WalStatus::kNoSpace : WalStatus::kIoError;
  }
  return WalStatus::kOk;
}

WalStatus WalWriter::Sync() {
  if (fd_ < 0) return WalStatus::kIoError;
  return FsyncNow();
}

WalStatus WalWriter::CloseClean() {
  if (fd_ < 0) return WalStatus::kIoError;
  const WalStatus synced = FsyncNow();
  if (synced != WalStatus::kOk) return synced;
  ::close(fd_);
  fd_ = -1;
  std::ofstream marker(CleanMarkerPath(config_.dir), std::ios::binary);
  marker << kMagic;
  marker.flush();
  return marker.good() ? WalStatus::kOk : WalStatus::kIoError;
}

void WalWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WalRecoverStats ReadWal(
    const std::string& dir,
    const std::function<void(std::span<const Sample>)>& on_samples,
    const std::function<void(std::int64_t)>& on_close) {
  WalRecoverStats stats;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    stats.ok = true;  // nothing durable yet: a fresh service
    return stats;
  }
  stats.clean_shutdown = std::filesystem::exists(CleanMarkerPath(dir), ec);
  const auto segments = ListSegments(dir);
  std::vector<Sample> batch;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const bool last = i + 1 == segments.size();
    const std::string& path = segments[i].second;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      stats.error = "cannot open wal segment " + path;
      return stats;
    }
    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    is.close();
    if (data.size() < kMagicLen) {
      // A crash while stamping the magic of a fresh segment: nothing was
      // ever durable here. Anywhere else it is damage.
      if (!last) {
        stats.error = "short wal segment " + path;
        return stats;
      }
      stats.truncated_bytes += data.size();
      std::filesystem::remove(path, ec);
      break;
    }
    if (data.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
      stats.error = "bad magic in wal segment " + path;
      return stats;
    }
    FrameAssembler assembler;
    assembler.Feed(std::string_view(data).substr(kMagicLen));
    MsgType type;
    std::string payload;
    while (assembler.Next(&type, &payload)) {
      if (type == MsgType::kSubmitBatch) {
        if (!DecodeSubmitBatch(payload, &batch)) {
          stats.error = "malformed sample record in " + path;
          return stats;
        }
        ++stats.records;
        stats.samples += batch.size();
        on_samples(batch);
      } else if (type == MsgType::kFlushAck) {
        std::int64_t day = 0;
        if (!DecodeFlushAck(payload, &day)) {
          stats.error = "malformed day-close marker in " + path;
          return stats;
        }
        ++stats.records;
        ++stats.closes;
        on_close(day);
      } else {
        stats.error = "foreign frame type in " + path;
        return stats;
      }
    }
    if (assembler.corrupt()) {
      stats.error = "corrupt framing in " + path;
      return stats;
    }
    const std::size_t leftover = assembler.buffered();
    if (leftover != 0) {
      if (!last) {
        // A torn record can only live at the very tail of the log: one in
        // the middle means the files were damaged, not just interrupted.
        stats.error = "torn record inside non-final segment " + path;
        return stats;
      }
      // The kill-mid-append signature. Chop it off the file, not just the
      // parse: the next incarnation appends to a fresh segment, but an
      // operator concatenating segments must never see half a record.
      stats.truncated_bytes += leftover;
      std::filesystem::resize_file(path, data.size() - leftover, ec);
      if (ec) {
        stats.error = "cannot truncate torn tail of " + path;
        return stats;
      }
    }
    ++stats.segments;
  }
  stats.ok = true;
  return stats;
}

}  // namespace manic::serve
