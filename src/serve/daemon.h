// The network front of the serving plane: a single-threaded poll() event
// loop on 127.0.0.1 that accepts many concurrent clients, feeds their bytes
// through per-connection Sessions, and flushes response frames as sockets
// drain. One event thread IS the service's single producer — submit frames
// from every client serialize naturally, no ingest lock needed. Shutdown
// rides a self-pipe so another thread can wake the loop without touching
// sockets. Each loop tick also calls CongestionService::PollClock(), so a
// live daemon (WallClock) closes days as wall time crosses midnight while a
// replay daemon (ManualClock or no clock) stays fully input-driven.
//
// BlockingClient is the matching minimal client: synchronous
// request/response over the same codec, used by the examples, the tests,
// and the perf gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/codec.h"
#include "serve/service.h"
#include "serve/session.h"

namespace manic::serve {

class TcpDaemon {
 public:
  // The daemon drives but does not own the service.
  explicit TcpDaemon(CongestionService* service) : service_(service) {}
  ~TcpDaemon();

  TcpDaemon(const TcpDaemon&) = delete;
  TcpDaemon& operator=(const TcpDaemon&) = delete;

  // Binds 127.0.0.1:port (port 0 = ephemeral). False on any socket error.
  bool Listen(std::uint16_t port = 0);
  std::uint16_t port() const noexcept { return port_; }

  // Runs the event loop until Shutdown(). Call from a dedicated thread.
  void Run();
  // Thread-safe; wakes the loop through the self-pipe.
  void Shutdown();

  // Per-connection pending-reply cap: a peer that pipelines requests
  // without reading its replies is dropped (after one best-effort flush)
  // once this many bytes are queued, so one slow or malicious reader
  // cannot exhaust daemon memory. Set before Run().
  void set_max_outbox_bytes(std::size_t n) noexcept { max_outbox_bytes_ = n; }

 private:
  struct Conn {
    Session session;
    std::string outbox;
    int fd = -1;
    bool closing = false;  // flush what we can, then drop
    explicit Conn(CongestionService* service) : session(service) {}
  };

  void HandleReadable(Conn* conn);
  static bool FlushOutbox(Conn* conn);
  void CloseAll();

  CongestionService* service_ = nullptr;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::size_t max_outbox_bytes_ = 4u << 20;
  std::vector<Conn*> conns_;
};

// Synchronous client for tests, examples, and the perf gate. Not
// thread-safe; one outstanding request at a time.
class BlockingClient {
 public:
  ~BlockingClient() { Close(); }

  // Connects to 127.0.0.1:port and completes the hello handshake.
  bool Connect(std::uint16_t port);
  void Close();
  bool connected() const noexcept { return fd_ >= 0; }
  std::uint32_t server_shards() const noexcept { return server_shards_; }

  // Each call sends one request frame and blocks for the matching reply;
  // nullopt/false mean a transport or protocol failure.
  bool Submit(std::span<const Sample> samples);
  std::optional<std::vector<VerdictRecord>> QueryRange(topo::LinkId link,
                                                       TimeSec t0, TimeSec t1);
  std::optional<VerdictRecord> QueryPoint(topo::LinkId link, TimeSec t);
  std::optional<infer::DataQuality> QueryQuality(topo::LinkId link);
  std::optional<ServiceStats> QueryStats();
  // Asks the daemon to close every day through the stream watermark;
  // returns the last closed day.
  std::optional<std::int64_t> Flush();

 private:
  bool SendAll(std::string_view bytes);
  bool ReadFrame(MsgType* type, std::string* payload);

  FrameAssembler assembler_;
  int fd_ = -1;
  std::uint32_t server_shards_ = 0;
};

}  // namespace manic::serve
