// The network front of the serving plane: a single-threaded poll() event
// loop on 127.0.0.1 that accepts many concurrent clients, feeds their bytes
// through per-connection Sessions, and flushes response frames as sockets
// drain. One event thread IS the service's single producer — submit frames
// from every client serialize naturally, no ingest lock needed. Shutdown
// rides a self-pipe so another thread can wake the loop without touching
// sockets. Each loop tick also calls CongestionService::PollClock(), so a
// live daemon (WallClock) closes days as wall time crosses midnight while a
// replay daemon (ManualClock or no clock) stays fully input-driven.
//
// BlockingClient is the matching minimal client: synchronous
// request/response over the same codec, used by the examples, the tests,
// and the perf gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/codec.h"
#include "serve/service.h"
#include "serve/session.h"

namespace manic::serve {

class TcpDaemon {
 public:
  // The daemon drives but does not own the service.
  explicit TcpDaemon(CongestionService* service) : service_(service) {}
  ~TcpDaemon();

  TcpDaemon(const TcpDaemon&) = delete;
  TcpDaemon& operator=(const TcpDaemon&) = delete;

  // Binds 127.0.0.1:port (port 0 = ephemeral). False on any socket error.
  bool Listen(std::uint16_t port = 0);
  std::uint16_t port() const noexcept { return port_; }

  // Runs the event loop until Shutdown(). Call from a dedicated thread.
  void Run();
  // Thread-safe; wakes the loop through the self-pipe.
  void Shutdown();
  // Graceful drain (SIGTERM path): stop accepting, keep the loop alive just
  // long enough to flush every pending outbox, then exit Run(). Unlike
  // Shutdown() no reply in flight is dropped, so a client that got its
  // submit ack can trust the daemon's WAL epilogue covers that sample.
  // Thread-safe and async-signal-safe (a flag store plus a pipe write).
  void Drain();

  // Per-connection pending-reply cap: a peer that pipelines requests
  // without reading its replies is dropped (after one best-effort flush)
  // once this many bytes are queued, so one slow or malicious reader
  // cannot exhaust daemon memory. Set before Run().
  void set_max_outbox_bytes(std::size_t n) noexcept { max_outbox_bytes_ = n; }

  // Idle-connection reaping: a connection with no socket activity for this
  // many consecutive poll ticks (~100ms each) is dropped, so abandoned
  // peers cannot pin daemon memory forever. Counted in loop ticks, not wall
  // time, to keep the loop free of clock reads. 0 = never reap (default).
  void set_max_idle_ticks(std::uint32_t n) noexcept { max_idle_ticks_ = n; }

 private:
  struct Conn {
    Session session;
    std::string outbox;
    int fd = -1;
    std::uint32_t idle_ticks = 0;  // poll ticks since the last byte moved
    bool closing = false;          // flush what we can, then drop
    explicit Conn(CongestionService* service) : session(service) {}
  };

  void HandleReadable(Conn* conn);
  static bool FlushOutbox(Conn* conn);
  void CloseAll();

  CongestionService* service_ = nullptr;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
  std::size_t max_outbox_bytes_ = 4u << 20;
  std::uint32_t max_idle_ticks_ = 0;
  std::vector<Conn*> conns_;
};

// Why each client call failed — transport trouble (retryable) is kept
// distinct from protocol trouble (not retryable) so RetryingClient can
// decide without string matching. kTimeout only fires when a socket
// timeout is configured; without one a dead-but-connected daemon blocks
// forever (the pre-timeout behavior).
enum class ClientError : std::uint8_t {
  kNone = 0,
  kConnect,   // could not establish the connection / handshake
  kTimeout,   // socket send/recv timed out (SO_RCVTIMEO / SO_SNDTIMEO)
  kClosed,    // peer closed or reset the connection
  kProtocol,  // malformed or unexpected frame; do not retry blindly
  kDegraded,  // daemon shed ingest (kErrDegraded): back off, do not resend
};

// Synchronous client for tests, examples, and the perf gate. Not
// thread-safe; one outstanding request at a time.
class BlockingClient {
 public:
  ~BlockingClient() { Close(); }

  // Socket send/recv timeout applied at Connect() time; 0 = block forever.
  // Set before Connect().
  void set_timeout_ms(std::uint32_t ms) noexcept { timeout_ms_ = ms; }

  // Connects to 127.0.0.1:port and completes the hello handshake.
  bool Connect(std::uint16_t port);
  void Close();
  bool connected() const noexcept { return fd_ >= 0; }
  std::uint32_t server_shards() const noexcept { return server_shards_; }
  // Why the most recent call failed (kNone after a success).
  ClientError last_error() const noexcept { return last_error_; }

  // Each call sends one request frame and blocks for the matching reply;
  // nullopt/false mean a transport or protocol failure.
  bool Submit(std::span<const Sample> samples);
  std::optional<std::vector<VerdictRecord>> QueryRange(topo::LinkId link,
                                                       TimeSec t0, TimeSec t1);
  std::optional<VerdictRecord> QueryPoint(topo::LinkId link, TimeSec t);
  std::optional<infer::DataQuality> QueryQuality(topo::LinkId link);
  std::optional<ServiceStats> QueryStats();
  // Asks the daemon to close every day through the stream watermark;
  // returns the last closed day.
  std::optional<std::int64_t> Flush();
  // The durable ingest watermark — how a reconnecting client learns where
  // to resume its stream (see WatermarkInfo in codec.h).
  std::optional<WatermarkInfo> GetWatermark();

 private:
  bool SendAll(std::string_view bytes);
  bool ReadFrame(MsgType* type, std::string* payload);
  // Classifies an unexpected reply: kError carrying kErrDegraded maps to
  // ClientError::kDegraded, everything else to kProtocol. Always false.
  bool FailOnReply(MsgType type, std::string_view payload);

  FrameAssembler assembler_;
  int fd_ = -1;
  std::uint32_t server_shards_ = 0;
  std::uint32_t timeout_ms_ = 0;
  ClientError last_error_ = ClientError::kNone;
};

}  // namespace manic::serve
