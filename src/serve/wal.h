// Durable write-ahead log for the serving plane. Every admitted sample and
// every day close is appended as a v1 codec frame — kSubmitBatch for runs of
// consumed samples, kFlushAck (payload: the closed day) as the day-close
// marker — to an append-only segment log under one directory:
//
//   wal-000001.seg   [magic "MANICWAL1\n"] [frame] [frame] ...
//   wal-000002.seg   ...
//   wal-clean        present only after a graceful CloseClean()
//
// Each daemon incarnation appends to a fresh segment, so a crash can tear at
// most the tail of the newest segment; ReadWal chops that torn tail off the
// file (the CheckpointLog idiom) and replays every complete record in order.
// Because the record stream IS the admitted-sample stream, replaying it
// through the same submit path rebuilds the service byte-identically — the
// recovered verdict log equals an uncrashed run's at any shard count.
//
// Durability ladder (WalFsync): kNone trusts the page cache entirely (crash-
// of-process safe, not power-loss safe); kDayClose (default) fsyncs at every
// day-close marker, bounding power-loss exposure to the open day; kEveryAppend
// fsyncs each record. Between fsyncs, a lost suffix is recovered from the
// client side: acks are sent only after the record reaches the log, so a
// reconnecting client (RetryingClient + kGetWatermark) resubmits exactly the
// un-acked suffix.
//
// All file writes funnel through one fault-aware write loop: an installed
// runtime::IoFaultHook can inject short writes, EINTR, ENOSPC, fsync failure,
// and mid-record crash points — the seam tools/crashloop and the WAL tests
// drive. kNoSpace is the degradation trigger: the service sheds ingest and
// keeps serving queries instead of aborting.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "runtime/io_fault.h"
#include "serve/sample.h"

namespace manic::serve {

// When the log forces bytes to the platter. See the header comment.
enum class WalFsync : std::uint8_t { kNone, kDayClose, kEveryAppend };

struct WalConfig {
  std::string dir;
  // A segment rotates once it holds at least this many record bytes.
  std::size_t segment_bytes = 64u << 20;
  WalFsync fsync = WalFsync::kDayClose;
  // Fault-injection seam; null = no faults.
  runtime::IoFaultHook* fault_hook = nullptr;
};

// Outcome of a WAL open/append/sync. kNoSpace (ENOSPC) is recoverable by
// the degradation ladder — serve queries, shed ingest; kIoError is not.
enum class [[nodiscard]] WalStatus : std::uint8_t {
  kOk,
  kNoSpace,
  kIoError,
};

// The fixed prefix of one on-disk WAL record — the v1 frame header, [u32
// length][u8 type], length counting the type byte plus the payload. Pinned
// in tools/manic_lint/layout.txt (wire-abi): widening it would orphan every
// existing log, so the pin forces a deliberate format bump instead.
struct WalRecordHeader {
  std::uint32_t length = 0;
  std::uint8_t type = 0;

  static constexpr std::uint64_t kEncodedSize = 5;
};

struct [[nodiscard]] WalRecoverStats {
  std::uint64_t segments = 0;   // segment files replayed
  std::uint64_t records = 0;    // complete records replayed
  std::uint64_t samples = 0;    // samples inside replayed batch records
  std::uint64_t closes = 0;     // day-close markers replayed
  std::uint64_t truncated_bytes = 0;  // torn tail chopped off the last segment
  bool clean_shutdown = false;  // the wal-clean marker was present
  bool ok = false;
  std::string error;
};

// Appender. One incarnation = one Open() (fresh segment) + appends +
// CloseClean() on graceful shutdown. Not thread-safe: the service's single
// producer (the daemon event loop) owns it.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Creates the directory if needed, removes the clean marker, and opens a
  // new segment numbered past every existing one.
  WalStatus Open(const WalConfig& config);
  bool is_open() const noexcept { return fd_ >= 0; }

  // One kSubmitBatch record for the run of consumed samples. No-op for an
  // empty span.
  WalStatus AppendSamples(std::span<const Sample> samples);
  // One kFlushAck day-close marker; fsyncs under WalFsync::kDayClose.
  WalStatus AppendClose(std::int64_t day);

  // Forces everything appended so far to the platter, regardless of policy.
  WalStatus Sync();
  // Sync + write the clean-shutdown marker + close the descriptor. The next
  // Open() removes the marker again.
  WalStatus CloseClean();
  // Closes the descriptor without the marker — the degraded-mode exit, and
  // the destructor's path: an unclean close is exactly what recovery expects.
  void Abandon();

  std::uint64_t records_appended() const noexcept { return records_; }
  std::uint64_t segments_opened() const noexcept { return segments_opened_; }

 private:
  WalStatus AppendFrame(std::string_view frame, bool day_close);
  WalStatus WriteAll(const char* data, std::size_t len);
  WalStatus OpenSegment();
  WalStatus FsyncNow();

  WalConfig config_;
  int fd_ = -1;
  std::uint32_t next_segment_ = 1;
  std::uint64_t segments_opened_ = 0;
  std::uint64_t records_ = 0;        // whole-record append counter (crash seam)
  std::uint64_t write_ops_ = 0;      // write() attempt counter (fault seam)
  std::uint64_t fsync_ops_ = 0;      // fsync() attempt counter (fault seam)
  std::size_t segment_written_ = 0;  // record bytes in the open segment
  std::string frame_buf_;            // reused per-append encode buffer
};

// Replays every complete record under `dir` in order: runs of samples to
// `on_samples`, day-close markers to `on_close`. Chops a torn tail off the
// newest segment (resize_file) so later appends land on a record boundary —
// recovery is idempotent: a crash *during* recovery loses nothing, the next
// attempt replays the identical record stream. Any malformation that is not
// a torn tail (corrupt framing, a foreign frame type, torn bytes in a
// non-final segment) fails with ok = false: the log is damaged, not merely
// interrupted.
WalRecoverStats ReadWal(
    const std::string& dir,
    const std::function<void(std::span<const Sample>)>& on_samples,
    const std::function<void(std::int64_t)>& on_close);

}  // namespace manic::serve
