#include "serve/verdict.h"

#include <cstdio>

namespace manic::serve {

std::string FormatVerdictLine(const VerdictRecord& v) {
  char buf[192];
  const int n = std::snprintf(
      buf, sizeof(buf),
      "day=%lld link=%lu recurring=%d congested=%d frac=%.9f vps=%lu/%lu "
      "quality=%d farcov=%.6f\n",
      static_cast<long long>(v.day), static_cast<unsigned long>(v.link),
      v.recurring ? 1 : 0, v.congested ? 1 : 0, v.fraction,
      static_cast<unsigned long>(v.asserting),
      static_cast<unsigned long>(v.contributors), v.quality_ok ? 1 : 0,
      v.far_coverage_frac);
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

}  // namespace manic::serve
