// Wire format v1 of the serving plane: a compact length-prefixed binary
// protocol (the jittertrap jt_messages shape, binary instead of JSON). Every
// frame is
//
//   [u32 length][u8 msg-type][payload ...]        (all integers little-endian)
//
// where `length` counts the type byte plus the payload. Frames longer than
// kMaxFramePayload, unknown message types, and short payloads are protocol
// errors: the FrameAssembler poisons the stream and the session layer drops
// the connection — a daemon must survive truncated and garbage input.
//
// Doubles and floats travel as IEEE-754 bit patterns (bit_cast), so a value
// round-trips bit-exactly — the replay contract extends to recorded streams.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "infer/data_quality.h"
#include "serve/sample.h"
#include "serve/verdict.h"

namespace manic::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
// Generous bound for a submit batch (~160k samples); anything larger is
// treated as a corrupt or hostile stream.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 22;

enum class MsgType : std::uint8_t {
  // client -> server
  kHello = 1,         // u32 protocol version
  kSubmitBatch = 3,   // u32 count, count * Sample
  kQueryPoint = 5,    // u32 link, i64 t
  kQueryRange = 6,    // u32 link, i64 t0, i64 t1
  kQueryQuality = 7,  // u32 link
  kQueryStats = 8,    // (empty)
  kFlush = 13,        // (empty) close every day through the watermark
  kGetWatermark = 15,  // (empty) report the durable ingest watermark
  // server -> client
  kHelloAck = 2,    // u32 version, u32 ingest shards
  kSubmitAck = 4,   // u64 samples accepted
  kVerdicts = 9,    // u32 count, count * VerdictRecord
  kQuality = 10,    // u8 found, DataQuality fields
  kStats = 11,      // ServiceStats fields
  kFlushAck = 14,   // i64 last closed day
  kWatermark = 16,  // WatermarkInfo fields
  kError = 12,      // u16 code, u16 len, message bytes
};

// The durable ingest watermark (kWatermark): everything a reconnecting
// client needs to resubmit idempotently. samples_consumed counts accepted +
// late samples — exactly the samples the WAL holds — so after a daemon
// restart a client that streamed N samples resumes at offset
// samples_consumed into its stream: no sample is double-ingested, none is
// lost. `degraded` mirrors the shed-on-ENOSPC ladder: queries still served,
// ingest rejected with kErrDegraded.
struct WatermarkInfo {
  std::uint64_t samples_consumed = 0;
  std::int64_t watermark_t = 0;      // newest admitted timestamp
  std::int64_t last_closed_day = 0;  // kNoDayClosed encoding when none
  bool degraded = false;
  bool saw_sample = false;

  friend bool operator==(const WatermarkInfo&, const WatermarkInfo&) = default;
};

// Aggregate counters the query plane reports (kStats).
struct ServiceStats {
  std::uint64_t samples = 0;        // accepted into ingest rings
  std::uint64_t verdicts = 0;       // rows in the verdict log
  std::uint64_t links = 0;          // links with at least one verdict
  std::int64_t last_closed_day = 0;
  std::int64_t days_closed = 0;
  std::uint32_t shards = 0;
  std::uint64_t raw_points = 0;     // points retained in the shard tsdbs
  std::uint64_t samples_late = 0;      // dropped: day already closed
  std::uint64_t samples_rejected = 0;  // dropped: timestamp out of bounds

  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

// ---- primitive byte streams -------------------------------------------------

class Encoder {
 public:
  void PutU8(std::uint8_t v);
  void PutU16(std::uint16_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v);
  void PutF32(float v);
  void PutF64(double v);
  void PutBytes(std::string_view bytes);  // raw, caller frames the length

  const std::string& data() const noexcept { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Bounds-checked reader with a sticky failure flag: once a read runs past
// the end every later Get fails, so decode functions can check ok() once.
class Decoder {
 public:
  explicit Decoder(std::string_view buf) : buf_(buf) {}

  bool GetU8(std::uint8_t* v);
  bool GetU16(std::uint16_t* v);
  bool GetU32(std::uint32_t* v);
  bool GetU64(std::uint64_t* v);
  bool GetI64(std::int64_t* v);
  bool GetF32(float* v);
  bool GetF64(double* v);
  bool GetBytes(std::size_t n, std::string_view* out);

  bool ok() const noexcept { return ok_; }
  bool AtEnd() const noexcept { return ok_ && pos_ == buf_.size(); }

 private:
  const void* Take(std::size_t n);
  std::string_view buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- framing ----------------------------------------------------------------

std::string EncodeFrame(MsgType type, std::string_view payload);

// Reassembles frames from an arbitrarily fragmented byte stream. Feed bytes
// as they arrive; Next() yields complete frames until more input is needed.
// A frame whose length field is zero or exceeds the protocol bound poisons
// the stream permanently (corrupt()).
class FrameAssembler {
 public:
  void Feed(std::string_view bytes);
  // True: *type / *payload hold the next complete frame. False: need more
  // bytes, or the stream is corrupt (check corrupt()).
  bool Next(MsgType* type, std::string* payload);
  bool corrupt() const noexcept { return corrupt_; }
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

// ---- message encode/decode --------------------------------------------------
// Every Encode* returns a complete frame (header included); every Decode*
// consumes a frame payload and returns false on any malformation (short,
// trailing bytes, out-of-range enum).

std::string EncodeHello();
bool DecodeHello(std::string_view payload, std::uint32_t* version);
std::string EncodeHelloAck(std::uint32_t shards);
bool DecodeHelloAck(std::string_view payload, std::uint32_t* version,
                    std::uint32_t* shards);

std::string EncodeSubmitBatch(std::span<const Sample> samples);
// Appends the frame to *out instead of allocating a fresh string — the WAL
// appender reuses one buffer across appends to keep the ingest path
// allocation-free in steady state.
void EncodeSubmitBatchTo(std::span<const Sample> samples, std::string* out);
bool DecodeSubmitBatch(std::string_view payload, std::vector<Sample>* out);
std::string EncodeSubmitAck(std::uint64_t accepted);
bool DecodeSubmitAck(std::string_view payload, std::uint64_t* accepted);

std::string EncodeQueryPoint(topo::LinkId link, TimeSec t);
bool DecodeQueryPoint(std::string_view payload, topo::LinkId* link,
                      TimeSec* t);
std::string EncodeQueryRange(topo::LinkId link, TimeSec t0, TimeSec t1);
bool DecodeQueryRange(std::string_view payload, topo::LinkId* link,
                      TimeSec* t0, TimeSec* t1);
std::string EncodeQueryQuality(topo::LinkId link);
bool DecodeQueryQuality(std::string_view payload, topo::LinkId* link);
std::string EncodeQueryStats();
std::string EncodeFlush();
std::string EncodeFlushAck(std::int64_t last_closed_day);
// Buffer-reusing variant (the WAL's day-close marker record).
void EncodeFlushAckTo(std::int64_t last_closed_day, std::string* out);
bool DecodeFlushAck(std::string_view payload, std::int64_t* last_closed_day);

std::string EncodeGetWatermark();
std::string EncodeWatermark(const WatermarkInfo& info);
bool DecodeWatermark(std::string_view payload, WatermarkInfo* info);

std::string EncodeVerdicts(std::span<const VerdictRecord> verdicts);
bool DecodeVerdicts(std::string_view payload, std::vector<VerdictRecord>* out);

std::string EncodeQuality(bool found, const infer::DataQuality& quality);
bool DecodeQuality(std::string_view payload, bool* found,
                   infer::DataQuality* quality);

std::string EncodeStats(const ServiceStats& stats);
bool DecodeStats(std::string_view payload, ServiceStats* stats);

std::string EncodeError(std::uint16_t code, std::string_view message);
bool DecodeError(std::string_view payload, std::uint16_t* code,
                 std::string* message);

}  // namespace manic::serve
