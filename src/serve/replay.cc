#include "serve/replay.h"

#include <vector>

namespace manic::serve {

bool StreamWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "wb");
  failed_ = file_ == nullptr;
  samples_ = 0;
  return !failed_;
}

bool StreamWriter::WriteBatch(std::span<const Sample> samples) {
  if (file_ == nullptr || failed_) return false;
  const std::string frame = EncodeSubmitBatch(samples);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    failed_ = true;
    return false;
  }
  samples_ += samples.size();
  return true;
}

bool StreamWriter::Close() {
  if (file_ == nullptr) return !failed_;
  if (std::fclose(file_) != 0) failed_ = true;
  file_ = nullptr;
  return !failed_;
}

ReplayStats ReplayFile(CongestionService* service, const std::string& path) {
  ReplayStats stats;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    stats.error = "cannot open stream file";
    return stats;
  }

  FrameAssembler assembler;
  std::vector<Sample> batch;
  char buf[65536];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), file);
    if (n == 0) break;
    assembler.Feed(std::string_view(buf, n));
    MsgType type;
    std::string payload;
    while (assembler.Next(&type, &payload)) {
      if (type != MsgType::kSubmitBatch ||
          !DecodeSubmitBatch(payload, &batch)) {
        stats.error = "stream contains a non-submit or malformed frame";
        std::fclose(file);
        return stats;
      }
      ++stats.frames;
      stats.samples += batch.size();
      const SubmitSummary summary = service->SubmitBatch(batch);
      if (summary.rejected != 0) {
        stats.error = "stream contains out-of-bounds sample timestamps";
        std::fclose(file);
        return stats;
      }
    }
    if (assembler.corrupt()) {
      stats.error = "corrupt framing in stream file";
      std::fclose(file);
      return stats;
    }
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    stats.error = "read error";
    return stats;
  }
  // Leftover bytes that never completed a frame are the signature of a
  // recorder killed mid-write. Every *complete* frame already replayed, so
  // skip the tail and count it instead of poisoning the whole replay.
  stats.truncated_tail_bytes = assembler.buffered();
  service->FinishStream();
  stats.ok = true;
  return stats;
}

}  // namespace manic::serve
