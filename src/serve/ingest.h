// One ingest shard: an SPSC ring feeding a worker thread that owns a
// ShardEngine (hot inference state) and a tsdb::Database (raw sample
// retention). The service routes every sample of a link to exactly one
// shard (link % shards), so a shard always holds complete per-link state
// and day-close verdicts never need a cross-shard merge.
//
// Day closes ride in-band: the producer pushes a kCloseDay control marker
// after the last sample of the day, the worker finalizes the day, deposits
// the verdicts and a fresh quality snapshot, and release-publishes
// closed_through_. The collector thread waits on that atomic and only then
// reads the deposits — the deposit slots are plain members, made safe by
// the acquire/release pair plus the service discipline of collecting day d
// before issuing the close for day d+1.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "infer/data_quality.h"
#include "serve/engine.h"
#include "serve/ring.h"
#include "serve/sample.h"
#include "serve/verdict.h"
#include "tsdb/tsdb.h"

namespace manic::serve {

struct IngestShardConfig {
  EngineConfig engine;
  std::size_t ring_capacity = 1 << 14;  // rounded up to a power of two
  bool store_raw = true;                // keep samples in the shard tsdb
  // When > 0, raw points older than this horizon (relative to the newest
  // point, per series) are dropped at every day close.
  TimeSec retention_horizon_s = 0;
};

// The declaration order below narrates ownership (producer lane, worker
// state, handshake lines); the 64 reorderable bytes are the price of the
// alignas(64) isolation and IngestShard is per-shard, not per-element.
// manic-lint: allow(layout: layout-pad)
class IngestShard {
 public:
  explicit IngestShard(IngestShardConfig config = {});
  ~IngestShard();

  IngestShard(const IngestShard&) = delete;
  IngestShard& operator=(const IngestShard&) = delete;

  void Start();
  // Drains the ring and joins the worker. Idempotent.
  void Stop();

  // ---- producer side (one thread) -------------------------------------------
  // Blocks while the ring is full.
  void PushSample(const Sample& s);
  // Schedules the finalization of `day`. The producer must push close
  // markers in ascending day order, after every sample of that day.
  void PushCloseDay(std::int64_t day);

  // ---- collector side --------------------------------------------------------
  // Blocks until the worker has finalized `day`.
  void WaitClosed(std::int64_t day);
  // Deposits for the most recently closed day. Valid only between
  // WaitClosed(d) returning and the next PushCloseDay — the service
  // collects each day before scheduling the next close.
  std::vector<VerdictRecord> TakeDayVerdicts();
  const std::map<topo::LinkId, infer::DataQuality>& LatestQuality() const {
    return quality_;
  }

  // ---- counters (any thread) -------------------------------------------------
  std::uint64_t SamplesProcessed() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t RawPoints() const noexcept {
    return raw_points_.load(std::memory_order_relaxed);
  }

 private:
  enum class MsgKind : std::uint8_t { kSample, kCloseDay, kStop };
  struct Msg {
    MsgKind kind = MsgKind::kSample;
    Sample sample;
    std::int64_t day = 0;
  };

  void WorkerLoop();
  void Store(const Sample& s);
  tsdb::Database::SeriesHandle RttHandle(topo::LinkId link, topo::VpId vp,
                                         bool far_side);
  tsdb::Database::SeriesHandle LossHandle(topo::LinkId link, topo::VpId vp);

  IngestShardConfig config_;
  SpscRing<Msg> ring_;
  std::thread worker_;
  bool running_ = false;

  // Worker-owned state; the collector reads the deposit slots only after
  // the closed_through_ acquire/release handshake.
  ShardEngine engine_;
  tsdb::Database db_;
  std::map<std::uint64_t, tsdb::Database::SeriesHandle> far_handles_;
  std::map<std::uint64_t, tsdb::Database::SeriesHandle> near_handles_;
  std::map<std::uint64_t, tsdb::Database::SeriesHandle> loss_handles_;
  std::vector<VerdictRecord> day_verdicts_;
  std::map<topo::LinkId, infer::DataQuality> quality_;

  // closed_through_ is the collector-vs-worker handshake line; the stat
  // counters live on their own line (they may share it with each other —
  // both are worker-written, see `same-line` in tools/manic_lint/layout.txt)
  // so worker counter bumps never invalidate the line the collector spins
  // on.
  alignas(64) std::atomic<std::int64_t> closed_through_{
      std::numeric_limits<std::int64_t>::min()};
  alignas(64) std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> raw_points_{0};
};

}  // namespace manic::serve
