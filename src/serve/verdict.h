// One row of the daemon's verdict log: the merged congestion verdict for a
// link on a closed day, folded across every VP whose rolling window covered
// that day — the live counterpart of one batch DayLinkRecord, plus the
// PR-5 DataQuality grade. FormatVerdictLine is the canonical text encoding:
// the replay-determinism gate byte-diffs whole logs, so the formatting is
// fixed-precision and locale-free.
#pragma once

#include <cstdint>
#include <string>

#include "topo/topology.h"

namespace manic::serve {

struct VerdictRecord {
  std::int64_t day = 0;  // epoch day (closed)
  topo::LinkId link = 0;
  bool recurring = false;   // >= 1 contributing VP asserted recurrence
  bool congested = false;   // fraction >= the day-link threshold
  bool quality_ok = false;  // link DataQuality acceptable as of this day
  double fraction = 0.0;    // mean congestion level over asserting VPs
  std::uint32_t contributors = 0;  // VP states with a full window this day
  std::uint32_t asserting = 0;     // of those, VPs asserting recurrence
  double far_coverage_frac = 0.0;  // link far-side coverage as of this day

  friend bool operator==(const VerdictRecord&, const VerdictRecord&) = default;
};

// Canonical single-line text form (newline-terminated), deterministic down
// to the byte for identical records.
std::string FormatVerdictLine(const VerdictRecord& v);

}  // namespace manic::serve
