#include "serve/service.h"

#include <algorithm>

#include "stats/calendar.h"

namespace manic::serve {

CongestionService::CongestionService(ServiceConfig config)
    : config_(config) {
  if (config_.shards < 1) config_.shards = 1;
  IngestShardConfig shard_config;
  shard_config.engine = config_.engine;
  shard_config.ring_capacity = config_.ring_capacity;
  shard_config.store_raw = config_.store_raw;
  shard_config.retention_horizon_s = config_.retention_horizon_s;
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<IngestShard>(shard_config));
  }
}

CongestionService::~CongestionService() { Stop(); }

void CongestionService::Start() {
  if (running_) return;
  running_ = true;
  for (auto& shard : shards_) shard->Start();
}

void CongestionService::Stop() {
  if (!running_) return;
  for (auto& shard : shards_) shard->Stop();
  running_ = false;
}

SubmitOutcome CongestionService::Submit(const Sample& s) {
  const std::int64_t day = stats::DayOf(s.t);
  // Admission bounds: the timestamp came off the wire, and an accepted
  // sample moves the watermark — which CloseThrough then walks day by day.
  // Anything absurdly far out (absolutely, or relative to the watermark /
  // live clock) is a hostile or broken producer, not data.
  bool rejected = day < -kMaxAbsSampleDay || day > kMaxAbsSampleDay;
  if (!rejected && saw_sample_ &&
      day > stats::DayOf(watermark_t_) + config_.max_day_jump) {
    rejected = true;
  }
  if (!rejected && config_.clock != nullptr &&
      day > stats::DayOf(config_.clock->NowSec()) + config_.max_day_jump) {
    rejected = true;
  }
  if (rejected) {
    samples_rejected_.fetch_add(1, std::memory_order_relaxed);
    return SubmitOutcome::kRejected;
  }
  if (!saw_sample_) {
    saw_sample_ = true;
    watermark_t_ = s.t;
    producer_last_closed_ = day - 1;
  }
  if (day <= producer_last_closed_) {
    // The day already closed: its verdict shipped, and the shards would
    // hold its bins open forever. Drop and count.
    samples_late_.fetch_add(1, std::memory_order_relaxed);
    return SubmitOutcome::kLate;
  }
  shards_[s.link % shards_.size()]->PushSample(s);
  samples_accepted_.fetch_add(1, std::memory_order_relaxed);
  if (s.t > watermark_t_) {
    watermark_t_ = s.t;
    // The watermark entered a new day: every earlier day is complete.
    CloseThrough(stats::DayOf(watermark_t_) - 1);
  }
  return SubmitOutcome::kAccepted;
}

SubmitSummary CongestionService::SubmitBatch(std::span<const Sample> samples) {
  SubmitSummary summary;
  for (const Sample& s : samples) {
    switch (Submit(s)) {
      case SubmitOutcome::kAccepted:
        ++summary.accepted;
        break;
      case SubmitOutcome::kLate:
        ++summary.late;
        break;
      case SubmitOutcome::kRejected:
        ++summary.rejected;
        break;
    }
  }
  return summary;
}

void CongestionService::PollClock() {
  if (config_.clock == nullptr) return;
  const std::int64_t today = stats::DayOf(config_.clock->NowSec());
  if (!saw_sample_) {
    saw_sample_ = true;
    producer_last_closed_ = today - 1;
    return;
  }
  CloseThrough(today - 1);
}

std::int64_t CongestionService::FinishStream() {
  if (saw_sample_) CloseThrough(stats::DayOf(watermark_t_));
  return producer_last_closed_;
}

void CongestionService::CloseThrough(std::int64_t target_day) {
  while (producer_last_closed_ < target_day) {
    const std::int64_t day = producer_last_closed_ + 1;
    // Broadcast the in-band close marker, then wait for every shard to
    // deposit; collecting before the next close is what keeps the deposit
    // slots race-free (see ingest.h).
    for (auto& shard : shards_) shard->PushCloseDay(day);
    std::vector<VerdictRecord> merged;
    std::map<topo::LinkId, infer::DataQuality> quality;
    for (auto& shard : shards_) {
      shard->WaitClosed(day);
      std::vector<VerdictRecord> part = shard->TakeDayVerdicts();
      merged.insert(merged.end(), part.begin(), part.end());
      for (const auto& [link, q] : shard->LatestQuality()) {
        quality[link] = q;
      }
    }
    // Each link lives on exactly one shard, so link order is a total order
    // over the merged rows — the log is independent of the shard count.
    std::sort(merged.begin(), merged.end(),
              [](const VerdictRecord& a, const VerdictRecord& b) {
                return a.link < b.link;
              });
    {
      runtime::MutexLock lock(mu_);
      for (const VerdictRecord& v : merged) {
        log_ += FormatVerdictLine(v);
        // std::map subscript keys cannot overflow, and these verdicts came
        // from shard-owned engines, not the wire.
        // manic-lint: allow(trust)
        index_[v.link].push_back(v);
        ++verdict_rows_;
      }
      for (const auto& [link, q] : quality) quality_[link] = q;
      last_closed_day_ = day;
      ++days_closed_;
    }
    producer_last_closed_ = day;
  }
}

std::vector<VerdictRecord> CongestionService::QueryRange(topo::LinkId link,
                                                         TimeSec t0,
                                                         TimeSec t1) const {
  std::vector<VerdictRecord> out;
  const std::int64_t first_day = stats::DayOf(t0);
  runtime::MutexLock lock(mu_);
  const auto it = index_.find(link);
  if (it == index_.end()) return out;
  for (const VerdictRecord& v : it->second) {
    if (v.day >= first_day && v.day * stats::kSecPerDay < t1) {
      out.push_back(v);
    }
  }
  return out;
}

std::optional<VerdictRecord> CongestionService::QueryPoint(topo::LinkId link,
                                                           TimeSec t) const {
  const std::int64_t day = stats::DayOf(t);
  runtime::MutexLock lock(mu_);
  const auto it = index_.find(link);
  if (it == index_.end()) return std::nullopt;
  // Verdicts per link are appended in ascending day order; take the last
  // one at or before t's day.
  const auto& rows = it->second;
  const auto pos = std::upper_bound(
      rows.begin(), rows.end(), day,
      [](std::int64_t d, const VerdictRecord& v) { return d < v.day; });
  if (pos == rows.begin()) return std::nullopt;
  return *(pos - 1);
}

std::optional<infer::DataQuality> CongestionService::QueryQuality(
    topo::LinkId link) const {
  runtime::MutexLock lock(mu_);
  const auto it = quality_.find(link);
  if (it == quality_.end()) return std::nullopt;
  return it->second;
}

ServiceStats CongestionService::Stats() const {
  ServiceStats stats;
  stats.samples = samples_accepted_.load(std::memory_order_relaxed);
  stats.samples_late = samples_late_.load(std::memory_order_relaxed);
  stats.samples_rejected = samples_rejected_.load(std::memory_order_relaxed);
  stats.shards = static_cast<std::uint32_t>(shards_.size());
  for (const auto& shard : shards_) stats.raw_points += shard->RawPoints();
  runtime::MutexLock lock(mu_);
  stats.verdicts = verdict_rows_;
  stats.links = index_.size();
  stats.last_closed_day = last_closed_day_;
  stats.days_closed = days_closed_;
  return stats;
}

std::string CongestionService::VerdictLogText() const {
  runtime::MutexLock lock(mu_);
  return log_;
}

std::int64_t CongestionService::LastClosedDay() const {
  runtime::MutexLock lock(mu_);
  return last_closed_day_;
}

}  // namespace manic::serve
