#include "serve/service.h"

#include <algorithm>

#include "stats/calendar.h"

namespace manic::serve {

CongestionService::CongestionService(ServiceConfig config)
    : config_(config) {
  if (config_.shards < 1) config_.shards = 1;
  IngestShardConfig shard_config;
  shard_config.engine = config_.engine;
  shard_config.ring_capacity = config_.ring_capacity;
  shard_config.store_raw = config_.store_raw;
  shard_config.retention_horizon_s = config_.retention_horizon_s;
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<IngestShard>(shard_config));
  }
}

CongestionService::~CongestionService() { Stop(); }

void CongestionService::Start() {
  if (running_) return;
  running_ = true;
  for (auto& shard : shards_) shard->Start();
}

void CongestionService::Stop() {
  if (!running_) return;
  for (auto& shard : shards_) shard->Stop();
  running_ = false;
}

SubmitOutcome CongestionService::Submit(const Sample& s) {
  const bool was_degraded = degraded_;
  SubmitOutcome outcome = SubmitOne(s, true);
  // The single-sample path flushes per call so the caller's view ("Submit
  // returned") never runs ahead of the log. Batch for throughput.
  if (WalLive() && FlushWalPending() != WalStatus::kOk) EnterDegraded();
  // Degradation may also strike inside SubmitOne's day-close walk, so the
  // shed conversion keys off the transition itself: consumed in memory but
  // not durable must never read as acknowledged.
  if (!was_degraded && degraded_ &&
      (outcome == SubmitOutcome::kAccepted ||
       outcome == SubmitOutcome::kLate)) {
    outcome = SubmitOutcome::kShed;
  }
  return outcome;
}

SubmitOutcome CongestionService::SubmitOne(const Sample& s, bool live) {
  if (live && degraded_) return SubmitOutcome::kShed;
  const std::int64_t day = stats::DayOf(s.t);
  // Admission bounds: the timestamp came off the wire, and an accepted
  // sample moves the watermark — which CloseThrough then walks day by day.
  // Anything absurdly far out (absolutely, or relative to the watermark /
  // live clock) is a hostile or broken producer, not data.
  bool rejected = day < -kMaxAbsSampleDay || day > kMaxAbsSampleDay;
  if (!rejected && saw_sample_ &&
      day > stats::DayOf(watermark_t_) + config_.max_day_jump) {
    rejected = true;
  }
  if (!rejected && config_.clock != nullptr &&
      day > stats::DayOf(config_.clock->NowSec()) + config_.max_day_jump) {
    rejected = true;
  }
  if (rejected) {
    samples_rejected_.fetch_add(1, std::memory_order_relaxed);
    return SubmitOutcome::kRejected;
  }
  if (!saw_sample_) {
    saw_sample_ = true;
    watermark_t_ = s.t;
    producer_last_closed_ = day - 1;
  }
  if (day <= producer_last_closed_) {
    // The day already closed: its verdict shipped, and the shards would
    // hold its bins open forever. Drop and count. Late samples are still
    // *consumed* — they advance the durable watermark — so they go to the
    // WAL too: replaying one lands on the identical closed day and drops
    // identically, keeping recovered counts exact.
    if (live && WalLive()) {
      wal_pending_.push_back(s);
    } else {
      ++samples_consumed_;  // no WAL, or replaying what is already durable
    }
    samples_late_.fetch_add(1, std::memory_order_relaxed);
    return SubmitOutcome::kLate;
  }
  // Write-ahead: the sample joins the pending WAL record before it reaches
  // the rings; the record is flushed before any ack or day close publishes.
  if (live && WalLive()) {
    wal_pending_.push_back(s);
  } else {
    ++samples_consumed_;  // no WAL, or replaying what is already durable
  }
  shards_[s.link % shards_.size()]->PushSample(s);
  samples_accepted_.fetch_add(1, std::memory_order_relaxed);
  if (s.t > watermark_t_) {
    watermark_t_ = s.t;
    // The watermark entered a new day: every earlier day is complete. In
    // replay, closes come from the logged markers instead, so clock-driven
    // (PollClock) closes recover at their original stream positions.
    if (live) CloseThrough(stats::DayOf(watermark_t_) - 1);
  }
  return SubmitOutcome::kAccepted;
}

SubmitSummary CongestionService::SubmitBatch(std::span<const Sample> samples) {
  SubmitSummary summary;
  const bool was_degraded = degraded_;
  for (const Sample& s : samples) {
    switch (SubmitOne(s, true)) {
      case SubmitOutcome::kAccepted:
        ++summary.accepted;
        break;
      case SubmitOutcome::kLate:
        ++summary.late;
        break;
      case SubmitOutcome::kRejected:
        ++summary.rejected;
        break;
      case SubmitOutcome::kShed:
        ++summary.shed;
        break;
    }
  }
  // One WAL record for the whole consumed run: the ack the session sends
  // after this return is the durability receipt — so if anything degraded
  // the WAL during this batch (the final flush here, or a day-close flush
  // mid-loop), the whole batch reports shed instead of acknowledged, even
  // though the samples already reached the rings (in-memory state is
  // allowed to run ahead of the log in degraded mode; a restart recovers
  // the durable prefix and the client resubmits the rest).
  if (WalLive() && FlushWalPending() != WalStatus::kOk) EnterDegraded();
  if (!was_degraded && degraded_) {
    summary.shed += summary.accepted + summary.late;
    summary.accepted = 0;
    summary.late = 0;
  }
  return summary;
}

WalRecoverStats CongestionService::RecoverFromWal() {
  WalRecoverStats stats;
  if (config_.wal_dir.empty()) {
    stats.ok = true;
    return stats;
  }
  if (!running_) Start();  // replay needs the shard workers
  replaying_ = true;
  stats = ReadWal(
      config_.wal_dir,
      [this](std::span<const Sample> batch) {
        // The logged stream is exactly the consumed stream: re-admitting it
        // reproduces every accepted/late decision, because the watermark
        // and closed-day state evolve identically.
        for (const Sample& s : batch) {
          const SubmitOutcome replayed = SubmitOne(s, false);
          (void)replayed;  // logged samples re-admit deterministically
        }
      },
      [this](std::int64_t day) { CloseThrough(day); });
  replaying_ = false;
  if (!stats.ok) return stats;
  // New appends land in a fresh segment past everything just replayed.
  wal_ = std::make_unique<WalWriter>();
  WalConfig wal_config;
  wal_config.dir = config_.wal_dir;
  wal_config.segment_bytes = config_.wal_segment_bytes;
  wal_config.fsync = config_.wal_fsync;
  wal_config.fault_hook = config_.wal_fault_hook;
  const WalStatus opened = wal_->Open(wal_config);
  if (opened != WalStatus::kOk) {
    stats.ok = false;
    stats.error = "cannot open a fresh wal segment under " + config_.wal_dir;
    EnterDegraded();
  }
  return stats;
}

WalStatus CongestionService::CloseWalClean() {
  if (wal_ == nullptr) return WalStatus::kOk;
  if (!WalLive()) return WalStatus::kIoError;  // degraded: nothing to stamp
  WalStatus status = FlushWalPending();
  if (status == WalStatus::kOk) status = wal_->CloseClean();
  if (status != WalStatus::kOk) EnterDegraded();
  return status;
}

WatermarkInfo CongestionService::Watermark() const {
  WatermarkInfo info;
  info.samples_consumed = samples_consumed_;
  info.watermark_t = watermark_t_;
  info.last_closed_day = producer_last_closed_;
  info.degraded = degraded_;
  info.saw_sample = saw_sample_;
  return info;
}

WalStatus CongestionService::FlushWalPending() {
  if (wal_pending_.empty()) return WalStatus::kOk;
  const WalStatus status = wal_->AppendSamples(wal_pending_);
  if (status == WalStatus::kOk) samples_consumed_ += wal_pending_.size();
  wal_pending_.clear();  // capacity retained: the buffer is reused forever
  return status;
}

void CongestionService::EnterDegraded() {
  degraded_ = true;
  wal_pending_.clear();
  if (wal_ != nullptr) wal_->Abandon();
}

void CongestionService::PollClock() {
  if (config_.clock == nullptr) return;
  const std::int64_t today = stats::DayOf(config_.clock->NowSec());
  if (!saw_sample_) {
    saw_sample_ = true;
    producer_last_closed_ = today - 1;
    return;
  }
  CloseThrough(today - 1);
}

std::int64_t CongestionService::FinishStream() {
  if (saw_sample_) CloseThrough(stats::DayOf(watermark_t_));
  return producer_last_closed_;
}

void CongestionService::CloseThrough(std::int64_t target_day) {
  while (producer_last_closed_ < target_day) {
    const std::int64_t day = producer_last_closed_ + 1;
    if (WalLive()) {
      // Durability order: every sample that can contribute to this close,
      // then the close marker, then (below) the verdicts publish. A crash
      // before the marker recovers to "day still open" — the verdicts were
      // never acknowledged to anyone.
      if (FlushWalPending() != WalStatus::kOk ||
          wal_->AppendClose(day) != WalStatus::kOk) {
        EnterDegraded();
      }
    }
    // Broadcast the in-band close marker, then wait for every shard to
    // deposit; collecting before the next close is what keeps the deposit
    // slots race-free (see ingest.h).
    for (auto& shard : shards_) shard->PushCloseDay(day);
    std::vector<VerdictRecord> merged;
    std::map<topo::LinkId, infer::DataQuality> quality;
    for (auto& shard : shards_) {
      shard->WaitClosed(day);
      std::vector<VerdictRecord> part = shard->TakeDayVerdicts();
      merged.insert(merged.end(), part.begin(), part.end());
      for (const auto& [link, q] : shard->LatestQuality()) {
        quality[link] = q;
      }
    }
    // Each link lives on exactly one shard, so link order is a total order
    // over the merged rows — the log is independent of the shard count.
    std::sort(merged.begin(), merged.end(),
              [](const VerdictRecord& a, const VerdictRecord& b) {
                return a.link < b.link;
              });
    {
      runtime::MutexLock lock(mu_);
      for (const VerdictRecord& v : merged) {
        log_ += FormatVerdictLine(v);
        // std::map subscript keys cannot overflow, and these verdicts came
        // from shard-owned engines, not the wire.
        // manic-lint: allow(trust)
        index_[v.link].push_back(v);
        ++verdict_rows_;
      }
      for (const auto& [link, q] : quality) quality_[link] = q;
      last_closed_day_ = day;
      ++days_closed_;
    }
    producer_last_closed_ = day;
  }
}

std::vector<VerdictRecord> CongestionService::QueryRange(topo::LinkId link,
                                                         TimeSec t0,
                                                         TimeSec t1) const {
  std::vector<VerdictRecord> out;
  const std::int64_t first_day = stats::DayOf(t0);
  runtime::MutexLock lock(mu_);
  const auto it = index_.find(link);
  if (it == index_.end()) return out;
  for (const VerdictRecord& v : it->second) {
    if (v.day >= first_day && v.day * stats::kSecPerDay < t1) {
      out.push_back(v);
    }
  }
  return out;
}

std::optional<VerdictRecord> CongestionService::QueryPoint(topo::LinkId link,
                                                           TimeSec t) const {
  const std::int64_t day = stats::DayOf(t);
  runtime::MutexLock lock(mu_);
  const auto it = index_.find(link);
  if (it == index_.end()) return std::nullopt;
  // Verdicts per link are appended in ascending day order; take the last
  // one at or before t's day.
  const auto& rows = it->second;
  const auto pos = std::upper_bound(
      rows.begin(), rows.end(), day,
      [](std::int64_t d, const VerdictRecord& v) { return d < v.day; });
  if (pos == rows.begin()) return std::nullopt;
  return *(pos - 1);
}

std::optional<infer::DataQuality> CongestionService::QueryQuality(
    topo::LinkId link) const {
  runtime::MutexLock lock(mu_);
  const auto it = quality_.find(link);
  if (it == quality_.end()) return std::nullopt;
  return it->second;
}

ServiceStats CongestionService::Stats() const {
  ServiceStats stats;
  stats.samples = samples_accepted_.load(std::memory_order_relaxed);
  stats.samples_late = samples_late_.load(std::memory_order_relaxed);
  stats.samples_rejected = samples_rejected_.load(std::memory_order_relaxed);
  stats.shards = static_cast<std::uint32_t>(shards_.size());
  for (const auto& shard : shards_) stats.raw_points += shard->RawPoints();
  runtime::MutexLock lock(mu_);
  stats.verdicts = verdict_rows_;
  stats.links = index_.size();
  stats.last_closed_day = last_closed_day_;
  stats.days_closed = days_closed_;
  return stats;
}

std::string CongestionService::VerdictLogText() const {
  runtime::MutexLock lock(mu_);
  return log_;
}

std::int64_t CongestionService::LastClosedDay() const {
  runtime::MutexLock lock(mu_);
  return last_closed_day_;
}

}  // namespace manic::serve
