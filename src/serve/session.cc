#include "serve/session.h"

namespace manic::serve {

bool Session::Consume(std::string_view bytes, std::string* out) {
  if (dead_) return false;
  assembler_.Feed(bytes);
  MsgType type;
  std::string payload;
  while (assembler_.Next(&type, &payload)) {
    ++frames_;
    if (!Dispatch(type, payload, out)) {
      dead_ = true;
      return false;
    }
  }
  if (assembler_.corrupt()) {
    out->append(EncodeError(kErrCorruptStream, "unparseable frame"));
    dead_ = true;
    return false;
  }
  return true;
}

bool Session::Dispatch(MsgType type, std::string_view payload,
                       std::string* out) {
  if (!hello_done_ && type != MsgType::kHello) {
    out->append(EncodeError(kErrUnexpected, "expected hello"));
    return false;
  }
  switch (type) {
    case MsgType::kHello: {
      std::uint32_t version = 0;
      if (!DecodeHello(payload, &version)) {
        out->append(EncodeError(kErrMalformed, "bad hello"));
        return false;
      }
      if (version != kProtocolVersion) {
        out->append(EncodeError(kErrBadVersion, "unsupported version"));
        return false;
      }
      hello_done_ = true;
      out->append(
          EncodeHelloAck(static_cast<std::uint32_t>(service_->shards())));
      return true;
    }
    case MsgType::kSubmitBatch: {
      std::vector<Sample> samples;
      if (!DecodeSubmitBatch(payload, &samples)) {
        out->append(EncodeError(kErrMalformed, "bad submit batch"));
        return false;
      }
      const SubmitSummary summary = service_->SubmitBatch(samples);
      if (summary.shed != 0) {
        // Degraded (WAL out of space): the shed samples were NOT consumed.
        // Unlike the violations below this keeps the connection — the query
        // plane still works, and the client resubmits after recovery.
        out->append(EncodeError(kErrDegraded, "ingest shed: wal out of space"));
        return true;
      }
      if (summary.rejected != 0) {
        // Out-of-bounds timestamps mark a hostile or broken producer; the
        // admission bounds (service.h) exist so one frame cannot wedge the
        // close loop — drop the connection, don't keep ingesting from it.
        out->append(
            EncodeError(kErrBadTimestamp, "sample timestamp out of bounds"));
        return false;
      }
      // Late samples were consumed (dropped and counted), so a well-behaved
      // client still sees every sample acknowledged.
      out->append(EncodeSubmitAck(summary.accepted + summary.late));
      return true;
    }
    case MsgType::kQueryPoint: {
      topo::LinkId link = 0;
      TimeSec t = 0;
      if (!DecodeQueryPoint(payload, &link, &t)) {
        out->append(EncodeError(kErrMalformed, "bad point query"));
        return false;
      }
      std::vector<VerdictRecord> rows;
      if (const auto v = service_->QueryPoint(link, t)) rows.push_back(*v);
      out->append(EncodeVerdicts(rows));
      return true;
    }
    case MsgType::kQueryRange: {
      topo::LinkId link = 0;
      TimeSec t0 = 0, t1 = 0;
      if (!DecodeQueryRange(payload, &link, &t0, &t1)) {
        out->append(EncodeError(kErrMalformed, "bad range query"));
        return false;
      }
      out->append(EncodeVerdicts(service_->QueryRange(link, t0, t1)));
      return true;
    }
    case MsgType::kQueryQuality: {
      topo::LinkId link = 0;
      if (!DecodeQueryQuality(payload, &link)) {
        out->append(EncodeError(kErrMalformed, "bad quality query"));
        return false;
      }
      const auto q = service_->QueryQuality(link);
      out->append(EncodeQuality(q.has_value(),
                                q.value_or(infer::DataQuality{})));
      return true;
    }
    case MsgType::kQueryStats: {
      if (!payload.empty()) {
        out->append(EncodeError(kErrMalformed, "bad stats query"));
        return false;
      }
      out->append(EncodeStats(service_->Stats()));
      return true;
    }
    case MsgType::kFlush: {
      if (!payload.empty()) {
        out->append(EncodeError(kErrMalformed, "bad flush"));
        return false;
      }
      out->append(EncodeFlushAck(service_->FinishStream()));
      return true;
    }
    case MsgType::kGetWatermark: {
      if (!payload.empty()) {
        out->append(EncodeError(kErrMalformed, "bad watermark request"));
        return false;
      }
      out->append(EncodeWatermark(service_->Watermark()));
      return true;
    }
    // Server-to-client types arriving at the server are protocol violations.
    case MsgType::kHelloAck:
    case MsgType::kSubmitAck:
    case MsgType::kVerdicts:
    case MsgType::kQuality:
    case MsgType::kStats:
    case MsgType::kFlushAck:
    case MsgType::kWatermark:
    case MsgType::kError:
      out->append(EncodeError(kErrUnexpected, "client sent a server frame"));
      return false;
  }
  out->append(EncodeError(kErrUnexpected, "unknown frame"));
  return false;
}

}  // namespace manic::serve
