// One client's protocol state machine, decoupled from any transport: the
// daemon feeds it raw bytes as they arrive off a socket (in arbitrary
// fragments), it reassembles frames, dispatches them against the service,
// and appends response frames to an output buffer. Keeping the session
// transport-free is what makes the protocol testable without a network —
// the frame-fragmentation and garbage-rejection tests drive Consume()
// directly.
//
// Sessions must be driven from the service's single producer thread (the
// daemon event loop): submit and flush messages mutate ingest state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/codec.h"
#include "serve/service.h"

namespace manic::serve {

// Error codes carried in kError frames.
inline constexpr std::uint16_t kErrBadVersion = 1;
inline constexpr std::uint16_t kErrMalformed = 2;
inline constexpr std::uint16_t kErrUnexpected = 3;
inline constexpr std::uint16_t kErrCorruptStream = 4;
inline constexpr std::uint16_t kErrBadTimestamp = 5;
// Degraded mode (WAL out of space): ingest shed, connection kept — the
// client should poll the watermark and resubmit once the daemon recovers.
inline constexpr std::uint16_t kErrDegraded = 6;

class Session {
 public:
  explicit Session(CongestionService* service) : service_(service) {}

  // Feeds incoming bytes; appends any response frames to *out. Returns
  // false when the connection must be dropped (corrupt framing, protocol
  // violation, version mismatch) — a final kError frame is appended first
  // so well-behaved clients learn why.
  bool Consume(std::string_view bytes, std::string* out);

  bool hello_done() const noexcept { return hello_done_; }
  std::uint64_t frames_handled() const noexcept { return frames_; }

 private:
  bool Dispatch(MsgType type, std::string_view payload, std::string* out);

  CongestionService* service_ = nullptr;
  FrameAssembler assembler_;
  bool hello_done_ = false;
  bool dead_ = false;
  std::uint64_t frames_ = 0;
};

}  // namespace manic::serve
