// Lock-free single-producer / single-consumer ring, the ingest lane between
// the daemon's feed thread and each shard worker (the jittertrap
// fixed-rate-sampling ring generalized to typed records). Indices are
// monotonically increasing uint64s masked into a power-of-two slot array;
// the producer owns tail_, the consumer owns head_, and each side reads the
// other's index with acquire ordering, so a popped record is fully
// constructed. Blocking variants park on C++20 atomic wait/notify — no
// mutexes, no clocks, no spinning under contention.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace manic::serve {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  // Approximate occupancy (exact when called from either endpoint's thread).
  std::size_t SizeApprox() const noexcept {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  // The push/pop lanes are the per-sample fast path: no allocation, no
  // locks, no syscalls — only masked slot writes and atomic cursor moves.
  // The region below is fenced by the linter's hot-path contract
  // (tools/manic_lint, rule "hot-path"); atomic wait/notify is the sanctioned
  // parking primitive and stays outside the banned word lists.
  // manic-lint: hot-path(begin)

  // ---- producer side --------------------------------------------------------
  bool TryPush(const T& value) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h == slots_.size()) return false;  // full
    slots_[t & mask_] = value;
    tail_.store(t + 1, std::memory_order_release);
    tail_.notify_one();
    return true;
  }

  // Blocks until the consumer makes room.
  void Push(const T& value) {
    for (;;) {
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      const std::uint64_t h = head_.load(std::memory_order_acquire);
      if (t - h < slots_.size()) {
        slots_[t & mask_] = value;
        tail_.store(t + 1, std::memory_order_release);
        tail_.notify_one();
        return;
      }
      head_.wait(h, std::memory_order_acquire);
    }
  }

  // ---- consumer side --------------------------------------------------------
  bool TryPop(T* out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return false;  // empty
    *out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    head_.notify_one();
    return true;
  }

  // Blocks until the producer publishes a record.
  T PopBlocking() {
    for (;;) {
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      const std::uint64_t t = tail_.load(std::memory_order_acquire);
      if (h != t) {
        T out = std::move(slots_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        head_.notify_one();
        return out;
      }
      tail_.wait(t, std::memory_order_acquire);
    }
  }
  // manic-lint: hot-path(end)

 private:
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  // Line-aligned so the producer's tail_ cursor does not share its cache
  // line with the slot/mask metadata both endpoints read on every op.
  alignas(64) std::vector<T> slots_;
  std::size_t mask_ = 0;
};

}  // namespace manic::serve
