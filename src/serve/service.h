// The always-on congestion service: N ingest shards behind a single-producer
// submit path, a deterministic day-close protocol, and a thread-safe query
// plane over the closed-day verdict index.
//
// Sharding: a link's samples always route to shard (link % shards), so each
// shard holds complete per-link state and per-day verdicts merge by simple
// concatenation + sort-by-link. Because every shard closes a day on its own
// complete link set, the canonical verdict log is byte-identical at ANY
// shard count — the headline replay guarantee, gated in CI.
//
// Day-close triggers:
//   stream mode  a submitted sample whose timestamp enters day d+1 closes
//                day d (the watermark advanced past it);
//   live mode    PollClock() closes every day that ended before clock-now;
//   end of stream FinishStream() closes through the watermark day itself.
// All three funnel into the same CloseThrough: push an in-band kCloseDay
// marker to every shard, wait for each shard's acknowledgment, collect and
// merge the deposited verdicts, append to the log. Submit and the close
// path are single-producer (one thread — the daemon event loop); queries
// may come from any thread.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <span>
#include <vector>

#include "infer/data_quality.h"
#include "runtime/clock.h"
#include "runtime/thread_annotations.h"
#include "serve/codec.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "serve/sample.h"
#include "serve/verdict.h"
#include "serve/wal.h"

namespace manic::serve {

inline constexpr std::int64_t kNoDayClosed =
    std::numeric_limits<std::int64_t>::min();

// Absolute sanity bound on a sample's day index (~2700 years either side of
// the study epoch). Wire timestamps are untrusted: without a bound, one
// frame with t near INT64_MAX would make CloseThrough walk ~1e14 days and
// overflow the int day-count casts downstream.
inline constexpr std::int64_t kMaxAbsSampleDay = 1'000'000;

// Declaration order groups by concern (admission, sharding, durability);
// the 8 reorderable padding bytes are irrelevant in a one-per-process
// config struct.
// manic-lint: allow(layout: layout-pad)
struct ServiceConfig {
  EngineConfig engine;
  std::size_t ring_capacity = 1 << 14;
  TimeSec retention_horizon_s = 0;  // 0 = keep every raw point
  // Live-mode event clock for PollClock(); leave null for pure stream mode
  // (replay), where day boundaries come from sample timestamps only.
  runtime::Clock* clock = nullptr;
  // A sample may run at most this many days ahead of the stream watermark
  // (and, in live mode, the clock) before it is rejected as implausible.
  // Bounds the work one submit frame can trigger: CloseThrough advances at
  // most this many days per accepted sample.
  std::int64_t max_day_jump = 366;
  int shards = 1;
  bool store_raw = true;
  // Crash safety: when non-empty, every consumed sample and day close is
  // appended to the write-ahead log under this directory before it is
  // acknowledged, and RecoverFromWal() replays the log on startup so the
  // post-restart verdict log is byte-identical to an uncrashed run.
  std::string wal_dir;
  WalFsync wal_fsync = WalFsync::kDayClose;
  std::size_t wal_segment_bytes = 64u << 20;
  // Fault-injection seam behind the WAL's file writes; null = no faults.
  runtime::IoFaultHook* wal_fault_hook = nullptr;
};

// What Submit did with one sample. kLate and kRejected samples are dropped
// and counted (ServiceStats); kRejected additionally marks a misbehaving
// producer — the session layer drops the connection. kShed is the degraded
// (WAL out of space) answer: the sample was NOT consumed, the connection
// stays up, queries keep working.
enum class [[nodiscard]] SubmitOutcome : std::uint8_t {
  kAccepted,
  kLate,      // day at or before the last closed day
  kRejected,  // timestamp outside the admission bounds
  kShed,      // degraded mode: ingest refused, resubmit after recovery
};

struct [[nodiscard]] SubmitSummary {
  std::uint64_t accepted = 0;
  std::uint64_t late = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
};

class CongestionService {
 public:
  explicit CongestionService(ServiceConfig config = {});
  ~CongestionService();

  CongestionService(const CongestionService&) = delete;
  CongestionService& operator=(const CongestionService&) = delete;

  void Start();
  void Stop();

  // ---- crash safety (producer thread, before serving) -----------------------
  // Replays the WAL under config.wal_dir through the shards (starting them
  // if needed), then opens a fresh segment for new appends. Call once,
  // before the daemon loop runs. A no-op success when wal_dir is empty.
  // Idempotent under crashes: dying inside recovery loses nothing.
  WalRecoverStats RecoverFromWal();
  // Graceful-drain epilogue: flushes the un-appended tail of consumed
  // samples, fsyncs, and stamps the clean-shutdown marker. kOk when no WAL
  // is configured.
  WalStatus CloseWalClean();
  // The durable ingest watermark (kGetWatermark reply). Producer thread.
  WatermarkInfo Watermark() const;
  // True once a WAL append has failed with ENOSPC: ingest is shed, queries
  // still served. Producer thread.
  bool degraded() const noexcept { return degraded_; }

  // ---- ingest (single producer thread) --------------------------------------
  SubmitOutcome Submit(const Sample& s);
  SubmitSummary SubmitBatch(std::span<const Sample> samples);
  // Live mode: closes every day that ended before the configured clock's
  // now. No-op without a clock.
  void PollClock();
  // Stream mode: closes through the watermark day (the newest day any
  // submitted sample touched). Returns the last closed day.
  std::int64_t FinishStream();

  // ---- queries (any thread) --------------------------------------------------
  std::vector<VerdictRecord> QueryRange(topo::LinkId link, TimeSec t0,
                                        TimeSec t1) const;
  // Latest verdict at or before time t for the link.
  std::optional<VerdictRecord> QueryPoint(topo::LinkId link, TimeSec t) const;
  std::optional<infer::DataQuality> QueryQuality(topo::LinkId link) const;
  ServiceStats Stats() const;
  // The canonical, append-only verdict log (FormatVerdictLine rows, days in
  // close order, links ascending within a day) — what the replay gate diffs.
  std::string VerdictLogText() const;
  std::int64_t LastClosedDay() const;  // kNoDayClosed before the first close

  int shards() const noexcept { return static_cast<int>(shards_.size()); }

 private:
  // The shared admission + routing path. `live` distinguishes normal ingest
  // (WAL-append every consumed sample, let a watermark advance close days)
  // from WAL replay (no re-append; closes come from replayed markers only,
  // so clock-driven closes recover deterministically too).
  SubmitOutcome SubmitOne(const Sample& s, bool live);
  void CloseThrough(std::int64_t target_day);
  bool WalLive() const noexcept {
    return wal_ != nullptr && wal_->is_open() && !degraded_ && !replaying_;
  }
  // Appends the pending run of consumed samples as one WAL record.
  WalStatus FlushWalPending();
  // The ENOSPC ladder: drop the WAL, shed ingest, keep the query plane.
  void EnterDegraded();

  ServiceConfig config_;
  std::vector<std::unique_ptr<IngestShard>> shards_;
  bool running_ = false;

  // Producer-thread state (no lock: Submit/FinishStream are single-producer).
  bool saw_sample_ = false;
  TimeSec watermark_t_ = 0;
  std::int64_t producer_last_closed_ = kNoDayClosed;
  std::unique_ptr<WalWriter> wal_;
  std::vector<Sample> wal_pending_;  // consumed since the last WAL record
  // The durable consumption count (the kGetWatermark contract): with a WAL,
  // advanced only when a pending run reaches the log, so it never runs
  // ahead of what a restart can recover; without one, every consumed
  // sample counts immediately.
  std::uint64_t samples_consumed_ = 0;
  bool replaying_ = false;
  bool degraded_ = false;
  std::atomic<std::uint64_t> samples_accepted_{0};
  std::atomic<std::uint64_t> samples_late_{0};
  std::atomic<std::uint64_t> samples_rejected_{0};

  mutable runtime::Mutex mu_;
  std::string log_ GUARDED_BY(mu_);
  std::map<topo::LinkId, std::vector<VerdictRecord>> index_ GUARDED_BY(mu_);
  std::map<topo::LinkId, infer::DataQuality> quality_ GUARDED_BY(mu_);
  std::uint64_t verdict_rows_ GUARDED_BY(mu_) = 0;
  std::int64_t last_closed_day_ GUARDED_BY(mu_) = kNoDayClosed;
  std::int64_t days_closed_ GUARDED_BY(mu_) = 0;
};

}  // namespace manic::serve
