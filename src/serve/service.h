// The always-on congestion service: N ingest shards behind a single-producer
// submit path, a deterministic day-close protocol, and a thread-safe query
// plane over the closed-day verdict index.
//
// Sharding: a link's samples always route to shard (link % shards), so each
// shard holds complete per-link state and per-day verdicts merge by simple
// concatenation + sort-by-link. Because every shard closes a day on its own
// complete link set, the canonical verdict log is byte-identical at ANY
// shard count — the headline replay guarantee, gated in CI.
//
// Day-close triggers:
//   stream mode  a submitted sample whose timestamp enters day d+1 closes
//                day d (the watermark advanced past it);
//   live mode    PollClock() closes every day that ended before clock-now;
//   end of stream FinishStream() closes through the watermark day itself.
// All three funnel into the same CloseThrough: push an in-band kCloseDay
// marker to every shard, wait for each shard's acknowledgment, collect and
// merge the deposited verdicts, append to the log. Submit and the close
// path are single-producer (one thread — the daemon event loop); queries
// may come from any thread.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <span>
#include <vector>

#include "infer/data_quality.h"
#include "runtime/clock.h"
#include "runtime/thread_annotations.h"
#include "serve/codec.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "serve/sample.h"
#include "serve/verdict.h"

namespace manic::serve {

inline constexpr std::int64_t kNoDayClosed =
    std::numeric_limits<std::int64_t>::min();

// Absolute sanity bound on a sample's day index (~2700 years either side of
// the study epoch). Wire timestamps are untrusted: without a bound, one
// frame with t near INT64_MAX would make CloseThrough walk ~1e14 days and
// overflow the int day-count casts downstream.
inline constexpr std::int64_t kMaxAbsSampleDay = 1'000'000;

struct ServiceConfig {
  EngineConfig engine;
  std::size_t ring_capacity = 1 << 14;
  TimeSec retention_horizon_s = 0;  // 0 = keep every raw point
  // Live-mode event clock for PollClock(); leave null for pure stream mode
  // (replay), where day boundaries come from sample timestamps only.
  runtime::Clock* clock = nullptr;
  // A sample may run at most this many days ahead of the stream watermark
  // (and, in live mode, the clock) before it is rejected as implausible.
  // Bounds the work one submit frame can trigger: CloseThrough advances at
  // most this many days per accepted sample.
  std::int64_t max_day_jump = 366;
  int shards = 1;
  bool store_raw = true;
};

// What Submit did with one sample. kLate and kRejected samples are dropped
// and counted (ServiceStats); kRejected additionally marks a misbehaving
// producer — the session layer drops the connection.
enum class [[nodiscard]] SubmitOutcome : std::uint8_t {
  kAccepted,
  kLate,      // day at or before the last closed day
  kRejected,  // timestamp outside the admission bounds
};

struct [[nodiscard]] SubmitSummary {
  std::uint64_t accepted = 0;
  std::uint64_t late = 0;
  std::uint64_t rejected = 0;
};

class CongestionService {
 public:
  explicit CongestionService(ServiceConfig config = {});
  ~CongestionService();

  CongestionService(const CongestionService&) = delete;
  CongestionService& operator=(const CongestionService&) = delete;

  void Start();
  void Stop();

  // ---- ingest (single producer thread) --------------------------------------
  SubmitOutcome Submit(const Sample& s);
  SubmitSummary SubmitBatch(std::span<const Sample> samples);
  // Live mode: closes every day that ended before the configured clock's
  // now. No-op without a clock.
  void PollClock();
  // Stream mode: closes through the watermark day (the newest day any
  // submitted sample touched). Returns the last closed day.
  std::int64_t FinishStream();

  // ---- queries (any thread) --------------------------------------------------
  std::vector<VerdictRecord> QueryRange(topo::LinkId link, TimeSec t0,
                                        TimeSec t1) const;
  // Latest verdict at or before time t for the link.
  std::optional<VerdictRecord> QueryPoint(topo::LinkId link, TimeSec t) const;
  std::optional<infer::DataQuality> QueryQuality(topo::LinkId link) const;
  ServiceStats Stats() const;
  // The canonical, append-only verdict log (FormatVerdictLine rows, days in
  // close order, links ascending within a day) — what the replay gate diffs.
  std::string VerdictLogText() const;
  std::int64_t LastClosedDay() const;  // kNoDayClosed before the first close

  int shards() const noexcept { return static_cast<int>(shards_.size()); }

 private:
  void CloseThrough(std::int64_t target_day);

  ServiceConfig config_;
  std::vector<std::unique_ptr<IngestShard>> shards_;
  bool running_ = false;

  // Producer-thread state (no lock: Submit/FinishStream are single-producer).
  bool saw_sample_ = false;
  TimeSec watermark_t_ = 0;
  std::int64_t producer_last_closed_ = kNoDayClosed;
  std::atomic<std::uint64_t> samples_accepted_{0};
  std::atomic<std::uint64_t> samples_late_{0};
  std::atomic<std::uint64_t> samples_rejected_{0};

  mutable runtime::Mutex mu_;
  std::string log_ GUARDED_BY(mu_);
  std::map<topo::LinkId, std::vector<VerdictRecord>> index_ GUARDED_BY(mu_);
  std::map<topo::LinkId, infer::DataQuality> quality_ GUARDED_BY(mu_);
  std::uint64_t verdict_rows_ GUARDED_BY(mu_) = 0;
  std::int64_t last_closed_day_ GUARDED_BY(mu_) = kNoDayClosed;
  std::int64_t days_closed_ GUARDED_BY(mu_) = 0;
};

}  // namespace manic::serve
