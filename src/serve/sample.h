// The unit of ingest for the serving plane: one measurement observation as
// a compact POD record. A measurement shard (a TSLP/loss collector standing
// at one vantage point) streams these into the daemon; the engine folds
// RTT kinds into 15-minute minimum bins, missing markers keep the
// probed-but-unanswered bookkeeping the DataQuality grade needs
// (tsdb::Database::WriteMissing semantics), and loss-rate samples are
// retained in the raw store only.
#pragma once

#include <cstdint>

#include "stats/timeseries.h"
#include "topo/topology.h"

namespace manic::serve {

using stats::TimeSec;

enum class SampleKind : std::uint8_t {
  kFarRtt = 0,       // far-side TSLP RTT, value in milliseconds
  kNearRtt = 1,      // near-side TSLP RTT, value in milliseconds
  kFarMissing = 2,   // far slot probed, nothing came back (value unused)
  kNearMissing = 3,  // near slot probed, nothing came back (value unused)
  kLossRate = 4,     // loss-probe rate, value as a fraction in [0, 1]
};
inline constexpr std::uint8_t kMaxSampleKind =
    static_cast<std::uint8_t>(SampleKind::kLossRate);

struct Sample {
  TimeSec t = 0;  // observation time, seconds since the study epoch
  topo::LinkId link = 0;
  topo::VpId vp = 0;
  SampleKind kind = SampleKind::kFarRtt;
  float value = 0.0f;  // unit depends on kind (see SampleKind)
};

}  // namespace manic::serve
