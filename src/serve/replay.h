// Record/replay for the serving plane. A recorded stream is simply the wire
// format: a file of kSubmitBatch frames, bit-exact float payloads included.
// StreamWriter produces one; ReplayFile feeds one back through a service
// exactly as a live client would (same codec, same submit path, FinishStream
// at end-of-file). The headline guarantee — replaying the same file through
// a service at ANY shard count yields a byte-identical verdict log — is
// what the CI replay gate diffs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

#include "serve/codec.h"
#include "serve/sample.h"
#include "serve/service.h"

namespace manic::serve {

// Appends kSubmitBatch frames to a stream file.
class StreamWriter {
 public:
  ~StreamWriter() { Close(); }

  bool Open(const std::string& path);
  bool WriteBatch(std::span<const Sample> samples);
  bool Close();  // false if any write failed
  std::uint64_t samples_written() const noexcept { return samples_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t samples_ = 0;
  bool failed_ = false;
};

struct [[nodiscard]] ReplayStats {
  std::uint64_t frames = 0;
  std::uint64_t samples = 0;
  // Bytes of an incomplete final frame skipped at EOF (a recorder that was
  // killed mid-write). Counted, not fatal — same contract as the WAL's
  // torn-tail truncation.
  std::uint64_t truncated_tail_bytes = 0;
  bool ok = false;
  std::string error;
};

// Replays a recorded stream into the service: every frame must be a valid
// kSubmitBatch; garbage and foreign frame types abort with ok = false. An
// incomplete *final* frame is tolerated (the recorder died mid-write): it
// is skipped and counted in truncated_tail_bytes. On EOF the stream is
// finished, closing every day through the watermark.
ReplayStats ReplayFile(CongestionService* service, const std::string& path);

}  // namespace manic::serve
