#include "serve/engine.h"

#include <cmath>
#include <limits>

#include "stats/calendar.h"

namespace manic::serve {

ShardEngine::ShardEngine(EngineConfig config) : config_(config) {}

// Per-sample admission: runs once for every record off the wire, so it is
// fenced by the linter's hot-path contract — no allocation, locking, or I/O
// except the explicitly justified cold branches below.
// manic-lint: hot-path(begin)
void ShardEngine::Ingest(const Sample& s) {
  if (s.kind == SampleKind::kLossRate) {
    ++samples_;
    return;
  }

  const std::int64_t day = stats::DayOf(s.t);
  if (has_closed_ && day <= closed_through_) {
    ++late_;
    return;
  }
  ++samples_;
  const std::int64_t within = s.t - day * stats::kSecPerDay;
  int interval = static_cast<int>(within / config_.autocorr.bin_width);
  if (interval < 0) interval = 0;
  if (interval >= config_.autocorr.intervals_per_day) {
    interval = config_.autocorr.intervals_per_day - 1;
  }

  const bool far_side =
      s.kind == SampleKind::kFarRtt || s.kind == SampleKind::kFarMissing;
  const bool missing =
      s.kind == SampleKind::kFarMissing || s.kind == SampleKind::kNearMissing;
  const float value_ms =
      missing ? std::numeric_limits<float>::quiet_NaN() : s.value;

  auto& per_vp = links_[s.link];
  auto it = per_vp.find(s.vp);
  if (it == per_vp.end()) {
    // First sample of a (link, vp) pair: a one-time classifier
    // construction, not the steady-state path.
    // manic-lint: allow(hot-path)
    it = per_vp.emplace(s.vp, infer::StreamingClassifier(config_.autocorr))
             .first;
  }
  it->second.AddSample(day, interval, far_side, value_ms);
}
// manic-lint: hot-path(end)

std::vector<VerdictRecord> ShardEngine::CloseDay(std::int64_t day) {
  has_closed_ = true;
  closed_through_ = day;
  // Study day-count for the quality grade, saturated so an extreme day
  // index cannot overflow the int cast.
  const int total_days =
      day >= static_cast<std::int64_t>(std::numeric_limits<int>::max())
          ? std::numeric_limits<int>::max()
          : static_cast<int>(day) + 1;
  std::vector<VerdictRecord> verdicts;
  for (auto& [link, per_vp] : links_) {
    double fraction_sum = 0.0;
    std::uint32_t contributors = 0;
    std::uint32_t asserting = 0;
    infer::LinkQualityAccumulator acc;
    bool measured = false;
    for (auto& [vp, state] : per_vp) {
      const infer::StreamingClassifier::DayOutcome outcome =
          state.CloseDay(day);
      if (outcome.classification) {
        ++contributors;
        if (outcome.classification->recurring) {
          ++asserting;
          fraction_sum += outcome.classification->fraction;
        }
      }
      if (state.quality().far_total > 0) {
        acc.Add(state.quality());
        measured = true;
      }
    }
    // Same gate as the batch loop: a link gets a verdict on every day at
    // least one of its VPs had a full window (today_observed), with the
    // fraction averaged over recurring-asserting VPs (0 when none assert).
    if (contributors == 0) continue;
    VerdictRecord v;
    v.day = day;
    v.link = link;
    v.contributors = contributors;
    v.asserting = asserting;
    v.recurring = asserting > 0;
    v.fraction =
        asserting > 0 ? fraction_sum / static_cast<double>(asserting) : 0.0;
    v.congested = v.fraction >= config_.congested_threshold_frac;
    if (measured && day >= 0) {
      const infer::DataQuality q = acc.Finish(total_days);
      v.quality_ok = q.Acceptable(config_.autocorr.quality);
      v.far_coverage_frac = q.far_coverage_frac;
    }
    verdicts.push_back(v);
  }
  return verdicts;
}

std::map<topo::LinkId, infer::DataQuality> ShardEngine::QualitySnapshot(
    int total_days) const {
  std::map<topo::LinkId, infer::DataQuality> out;
  for (const auto& [link, per_vp] : links_) {
    infer::LinkQualityAccumulator acc;
    bool measured = false;
    for (const auto& [vp, state] : per_vp) {
      if (state.quality().far_total == 0) continue;
      acc.Add(state.quality());
      measured = true;
    }
    // manic-lint: allow(layout: alloc-scale) -- day-close deposit map,
    if (measured) out.emplace(link, acc.Finish(total_days));  // once per day.
  }
  return out;
}

}  // namespace manic::serve
