#include "serve/daemon.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace manic::serve {
namespace {

// Loop tick: bounds how stale PollClock-driven day closes can be. Purely a
// latency/CPU trade; correctness never depends on it.
constexpr int kPollTimeoutMs = 100;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// SO_RCVTIMEO/SO_SNDTIMEO: a blocking call returns EAGAIN after ms instead
// of hanging forever on a wedged daemon. 0 keeps the block-forever default.
void ApplySocketTimeout(int fd, std::uint32_t ms) {
  if (ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

TcpDaemon::~TcpDaemon() {
  CloseAll();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

bool TcpDaemon::Listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0 || !SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  return true;
}

void TcpDaemon::Shutdown() {
  stop_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void TcpDaemon::Drain() {
  drain_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

bool TcpDaemon::FlushOutbox(Conn* conn) {
  while (!conn->outbox.empty()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbox.data(), conn->outbox.size(),
               MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbox.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  return true;
}

void TcpDaemon::HandleReadable(Conn* conn) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      std::string replies;
      const bool keep = conn->session.Consume(
          std::string_view(buf, static_cast<std::size_t>(n)), &replies);
      conn->outbox.append(replies);
      if (!keep) {
        conn->closing = true;
        return;
      }
      if (conn->outbox.size() > max_outbox_bytes_) {
        conn->closing = true;  // unreading peer: shed it, don't buffer it
        return;
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) return;
      continue;
    }
    if (n == 0) {  // orderly peer close
      conn->closing = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn->closing = true;
    return;
  }
}

void TcpDaemon::Run() {
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_acquire)) {
    const bool draining = drain_.load(std::memory_order_acquire);
    if (draining) {
      // Drain exit condition: every reply in flight has been flushed. New
      // input is no longer read, so the set of pending bytes only shrinks.
      bool pending = false;
      for (const Conn* conn : conns_) {
        if (!conn->outbox.empty()) pending = true;
      }
      if (!pending) break;
    }
    fds.clear();
    fds.push_back({listen_fd_, static_cast<short>(draining ? 0 : POLLIN), 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const Conn* conn : conns_) {
      short events = draining ? 0 : POLLIN;
      if (!conn->outbox.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) break;

    // Live-mode day closes; a no-op without a configured clock.
    service_->PollClock();

    if (ready > 0) {
      if (fds[0].revents & POLLIN) {
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          if (!SetNonBlocking(fd)) {
            ::close(fd);
            continue;
          }
          Conn* conn = new Conn(service_);
          conn->fd = fd;
          conns_.push_back(conn);
        }
      }
      if (fds[1].revents & POLLIN) {
        char wake[16];
        while (::read(wake_read_fd_, wake, sizeof(wake)) > 0) {
        }
      }

      // conns_ indices line up with fds[2..]; accept() above only appends.
      const std::size_t polled = fds.size() - 2;
      for (std::size_t i = 0; i < polled; ++i) {
        Conn* conn = conns_[i];
        const short revents = fds[i + 2].revents;
        if (revents & (POLLERR | POLLHUP | POLLNVAL)) conn->closing = true;
        if (!conn->closing && (revents & POLLIN)) HandleReadable(conn);
        if (revents & (POLLIN | POLLOUT)) {
          if (!FlushOutbox(conn)) conn->closing = true;
          conn->idle_ticks = 0;
        } else {
          ++conn->idle_ticks;
        }
      }
    } else {
      // Timed-out tick: nobody moved bytes, everyone idles one notch.
      for (Conn* conn : conns_) ++conn->idle_ticks;
    }

    if (max_idle_ticks_ != 0) {
      for (Conn* conn : conns_) {
        if (conn->idle_ticks > max_idle_ticks_) conn->closing = true;
      }
    }

    // Reap: a closing connection gets one final best-effort flush (the
    // kError frame) before the socket drops.
    std::vector<Conn*> alive;
    alive.reserve(conns_.size());
    for (Conn* conn : conns_) {
      if (conn->closing) {
        FlushOutbox(conn);
        ::close(conn->fd);
        delete conn;
      } else {
        alive.push_back(conn);
      }
    }
    conns_.swap(alive);
  }
  CloseAll();
}

void TcpDaemon::CloseAll() {
  for (Conn* conn : conns_) {
    ::close(conn->fd);
    delete conn;
  }
  conns_.clear();
}

// ---- BlockingClient ---------------------------------------------------------

bool BlockingClient::Connect(std::uint16_t port) {
  Close();
  last_error_ = ClientError::kNone;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    last_error_ = ClientError::kConnect;
    return false;
  }
  ApplySocketTimeout(fd_, timeout_ms_);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Close();
    last_error_ = ClientError::kConnect;
    return false;
  }
  MsgType type;
  std::string payload;
  std::uint32_t version = 0;
  if (!SendAll(EncodeHello()) || !ReadFrame(&type, &payload) ||
      type != MsgType::kHelloAck ||
      !DecodeHelloAck(payload, &version, &server_shards_) ||
      version != kProtocolVersion) {
    Close();
    last_error_ = ClientError::kConnect;
    return false;
  }
  return true;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  assembler_ = FrameAssembler();
  server_shards_ = 0;
}

bool BlockingClient::SendAll(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        last_error_ = ClientError::kTimeout;  // SO_SNDTIMEO expired
      } else {
        last_error_ = ClientError::kClosed;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool BlockingClient::ReadFrame(MsgType* type, std::string* payload) {
  for (;;) {
    if (assembler_.Next(type, payload)) return true;
    if (assembler_.corrupt()) {
      last_error_ = ClientError::kProtocol;
      return false;
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        last_error_ = ClientError::kTimeout;  // SO_RCVTIMEO expired
      } else {
        last_error_ = ClientError::kClosed;
      }
      return false;
    }
    assembler_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

bool BlockingClient::FailOnReply(MsgType type, std::string_view payload) {
  std::uint16_t code = 0;
  std::string message;
  if (type == MsgType::kError && DecodeError(payload, &code, &message) &&
      code == kErrDegraded) {
    last_error_ = ClientError::kDegraded;
  } else {
    last_error_ = ClientError::kProtocol;
  }
  return false;
}

bool BlockingClient::Submit(std::span<const Sample> samples) {
  last_error_ = ClientError::kNone;
  if (fd_ < 0) {
    last_error_ = ClientError::kClosed;
    return false;
  }
  if (!SendAll(EncodeSubmitBatch(samples))) return false;
  MsgType type;
  std::string payload;
  if (!ReadFrame(&type, &payload)) return false;
  if (type != MsgType::kSubmitAck) return FailOnReply(type, payload);
  std::uint64_t accepted = 0;
  if (!DecodeSubmitAck(payload, &accepted) || accepted != samples.size()) {
    last_error_ = ClientError::kProtocol;
    return false;
  }
  return true;
}

std::optional<std::vector<VerdictRecord>> BlockingClient::QueryRange(
    topo::LinkId link, TimeSec t0, TimeSec t1) {
  last_error_ = ClientError::kNone;
  if (fd_ < 0) {
    last_error_ = ClientError::kClosed;
    return std::nullopt;
  }
  if (!SendAll(EncodeQueryRange(link, t0, t1))) return std::nullopt;
  MsgType type;
  std::string payload;
  std::vector<VerdictRecord> rows;
  if (!ReadFrame(&type, &payload)) return std::nullopt;
  if (type != MsgType::kVerdicts) {
    FailOnReply(type, payload);
    return std::nullopt;
  }
  if (!DecodeVerdicts(payload, &rows)) {
    last_error_ = ClientError::kProtocol;
    return std::nullopt;
  }
  return rows;
}

std::optional<VerdictRecord> BlockingClient::QueryPoint(topo::LinkId link,
                                                        TimeSec t) {
  last_error_ = ClientError::kNone;
  if (fd_ < 0) {
    last_error_ = ClientError::kClosed;
    return std::nullopt;
  }
  if (!SendAll(EncodeQueryPoint(link, t))) return std::nullopt;
  MsgType type;
  std::string payload;
  std::vector<VerdictRecord> rows;
  if (!ReadFrame(&type, &payload)) return std::nullopt;
  if (type != MsgType::kVerdicts) {
    FailOnReply(type, payload);
    return std::nullopt;
  }
  if (!DecodeVerdicts(payload, &rows)) {
    last_error_ = ClientError::kProtocol;
    return std::nullopt;
  }
  if (rows.empty()) return std::nullopt;  // no verdict, not an error
  return rows.front();
}

std::optional<infer::DataQuality> BlockingClient::QueryQuality(
    topo::LinkId link) {
  last_error_ = ClientError::kNone;
  if (fd_ < 0) {
    last_error_ = ClientError::kClosed;
    return std::nullopt;
  }
  if (!SendAll(EncodeQueryQuality(link))) return std::nullopt;
  MsgType type;
  std::string payload;
  bool found = false;
  infer::DataQuality quality;
  if (!ReadFrame(&type, &payload)) return std::nullopt;
  if (type != MsgType::kQuality) {
    FailOnReply(type, payload);
    return std::nullopt;
  }
  if (!DecodeQuality(payload, &found, &quality)) {
    last_error_ = ClientError::kProtocol;
    return std::nullopt;
  }
  if (!found) return std::nullopt;  // unknown link, not an error
  return quality;
}

std::optional<ServiceStats> BlockingClient::QueryStats() {
  last_error_ = ClientError::kNone;
  if (fd_ < 0) {
    last_error_ = ClientError::kClosed;
    return std::nullopt;
  }
  if (!SendAll(EncodeQueryStats())) return std::nullopt;
  MsgType type;
  std::string payload;
  ServiceStats stats;
  if (!ReadFrame(&type, &payload)) return std::nullopt;
  if (type != MsgType::kStats) {
    FailOnReply(type, payload);
    return std::nullopt;
  }
  if (!DecodeStats(payload, &stats)) {
    last_error_ = ClientError::kProtocol;
    return std::nullopt;
  }
  return stats;
}

std::optional<std::int64_t> BlockingClient::Flush() {
  last_error_ = ClientError::kNone;
  if (fd_ < 0) {
    last_error_ = ClientError::kClosed;
    return std::nullopt;
  }
  if (!SendAll(EncodeFlush())) return std::nullopt;
  MsgType type;
  std::string payload;
  std::int64_t day = 0;
  if (!ReadFrame(&type, &payload)) return std::nullopt;
  if (type != MsgType::kFlushAck) {
    FailOnReply(type, payload);
    return std::nullopt;
  }
  if (!DecodeFlushAck(payload, &day)) {
    last_error_ = ClientError::kProtocol;
    return std::nullopt;
  }
  return day;
}

std::optional<WatermarkInfo> BlockingClient::GetWatermark() {
  last_error_ = ClientError::kNone;
  if (fd_ < 0) {
    last_error_ = ClientError::kClosed;
    return std::nullopt;
  }
  if (!SendAll(EncodeGetWatermark())) return std::nullopt;
  MsgType type;
  std::string payload;
  WatermarkInfo info;
  if (!ReadFrame(&type, &payload)) return std::nullopt;
  if (type != MsgType::kWatermark) {
    FailOnReply(type, payload);
    return std::nullopt;
  }
  if (!DecodeWatermark(payload, &info)) {
    last_error_ = ClientError::kProtocol;
    return std::nullopt;
  }
  return info;
}

}  // namespace manic::serve
