// High-frequency packet-loss measurement (§3.3): TTL-limited probes toward
// the near and far ends of selected border links at one probe per second per
// interface under a 150 pps VP budget, aggregated to a loss percentage per
// 5-minute window (300 samples per window in the paper). Target selection is
// reactive: links to peers/providers (or a static list of large transit and
// content ASes) that showed a congestion episode in the previous week.
//
// Two execution modes: kPerProbe walks every probe through the simulator
// (used to validate the aggregate path); kAggregate computes the window's
// probe-loss probability once and draws the lost count as Binomial(300, p) —
// statistically identical and ~300x cheaper, enabling month-scale campaigns
// (Table 1). Equivalence is covered by tests.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "probe/probe.h"
#include "stats/rng.h"
#include "tsdb/tsdb.h"
#include "tslp/tslp.h"

namespace manic::lossprobe {

using sim::SimNetwork;
using sim::TimeSec;
using topo::Asn;
using topo::Ipv4Addr;
using topo::VpId;

inline constexpr const char* kMeasurementLoss = "loss_pct";  // tags: vp, link, side

enum class LossMode { kPerProbe, kAggregate };

struct LossTarget {
  Ipv4Addr far_addr;
  Ipv4Addr dst;
  std::uint16_t flow = 0;
  int far_ttl = 0;
};

class LossProber {
 public:
  struct Config {
    double pps_budget = 150.0;
    TimeSec window = 300;       // aggregation window (5 minutes)
    int probes_per_window = 300;  // 1 per second per interface
    LossMode mode = LossMode::kAggregate;
  };

  LossProber(SimNetwork& net, VpId vp, tsdb::Database& db, Config config);
  LossProber(SimNetwork& net, VpId vp, tsdb::Database& db)
      : LossProber(net, vp, db, Config{}) {}

  // Reactive target selection: from the VP's current TSLP targets, keep
  // links whose neighbor is a peer or provider of the host AS (or on the
  // static large-AS list) AND that appear in `recently_congested`
  // (far-address set produced by last week's inference). Respects the pps
  // budget; returns the number of links admitted.
  std::size_t SelectTargets(const std::vector<tslp::TslpTarget>& tslp_targets,
                            const std::set<std::uint32_t>& recently_congested,
                            const std::set<Asn>& static_large_ases = {});

  void SetTargetsDirect(std::vector<LossTarget> targets) {
    targets_ = std::move(targets);
  }
  const std::vector<LossTarget>& targets() const noexcept { return targets_; }

  // Measures every window in [t0, t1), writing near/far loss percentages.
  void RunCampaign(TimeSec t0, TimeSec t1);

  // One window starting at t for one target; exposed for tests.
  struct WindowLoss {
    double near_pct = 0.0;
    double far_pct = 0.0;
  };
  WindowLoss MeasureWindow(const LossTarget& target, TimeSec t);

 private:
  double WindowLossPct(const LossTarget& target, int ttl, TimeSec t);

  SimNetwork* net_ = nullptr;
  VpId vp_ = 0;
  tsdb::Database* db_ = nullptr;
  Config config_;
  std::string vp_name_;
  std::vector<LossTarget> targets_;
  stats::Rng rng_;
};

}  // namespace manic::lossprobe
