#include "lossprobe/lossprobe.h"

namespace manic::lossprobe {

LossProber::LossProber(SimNetwork& net, VpId vp, tsdb::Database& db,
                       Config config)
    : net_(&net),
      vp_(vp),
      db_(&db),
      config_(config),
      rng_(stats::Rng::HashMix(0x1055, vp)) {
  vp_name_ = net.topology().vp(vp).name;
}

std::size_t LossProber::SelectTargets(
    const std::vector<tslp::TslpTarget>& tslp_targets,
    const std::set<std::uint32_t>& recently_congested,
    const std::set<Asn>& static_large_ases) {
  targets_.clear();
  const topo::Topology& topo = net_->topology();
  const Asn host = topo.vp(vp_).host_as;
  // Each target consumes 2 probes/second (near + far interface).
  probe::RateBudget budget(config_.pps_budget);
  for (const tslp::TslpTarget& t : tslp_targets) {
    if (t.dests.empty()) continue;
    const auto rel = topo.relationships.Get(host, t.neighbor);
    const bool eligible_rel =
        (rel.has_value() && (*rel == topo::Relationship::kPeer ||
                             *rel == topo::Relationship::kProvider)) ||
        static_large_ases.contains(t.neighbor);
    if (!eligible_rel) continue;
    if (!recently_congested.contains(t.far_addr.value())) continue;
    if (!budget.Commit(2.0, 1.0)) break;
    const tslp::TslpDest& d = t.dests.front();
    targets_.push_back({t.far_addr, d.dst, d.flow, d.far_ttl});
  }
  return targets_.size();
}

double LossProber::WindowLossPct(const LossTarget& target, int ttl,
                                 TimeSec t) {
  const sim::FlowId flow{target.flow};
  if (config_.mode == LossMode::kAggregate) {
    // Evaluate the probe loss probability at a few instants across the
    // window (demand noise is per-5-minute already) and draw the lost count
    // once.
    const auto exp = net_->ExpectProbe(vp_, target.dst, ttl, flow,
                                       t + config_.window / 2);
    if (!exp.reachable) return 100.0;
    const std::uint32_t lost = rng_.Binomial(
        static_cast<std::uint32_t>(config_.probes_per_window), exp.loss_prob);
    return 100.0 * static_cast<double>(lost) /
           static_cast<double>(config_.probes_per_window);
  }
  int lost = 0;
  for (int i = 0; i < config_.probes_per_window; ++i) {
    const TimeSec when =
        t + i * config_.window / config_.probes_per_window;
    const sim::ProbeReply r = net_->Probe(vp_, target.dst, ttl, flow, when);
    if (r.outcome != sim::ProbeOutcome::kTtlExpired) ++lost;
  }
  return 100.0 * static_cast<double>(lost) /
         static_cast<double>(config_.probes_per_window);
}

LossProber::WindowLoss LossProber::MeasureWindow(const LossTarget& target,
                                                 TimeSec t) {
  WindowLoss w;
  w.near_pct = WindowLossPct(target, target.far_ttl - 1, t);
  w.far_pct = WindowLossPct(target, target.far_ttl, t);
  return w;
}

void LossProber::RunCampaign(TimeSec t0, TimeSec t1) {
  for (TimeSec t = t0; t < t1; t += config_.window) {
    for (const LossTarget& target : targets_) {
      const WindowLoss w = MeasureWindow(target, t);
      db_->Write(kMeasurementLoss,
                 tslp::TslpScheduler::Tags(vp_name_, target.far_addr,
                                           tslp::kSideNear),
                 t, w.near_pct);
      db_->Write(kMeasurementLoss,
                 tslp::TslpScheduler::Tags(vp_name_, target.far_addr,
                                           tslp::kSideFar),
                 t, w.far_pct);
    }
  }
}

}  // namespace manic::lossprobe
