#include "ytstream/ytstream.h"

#include <algorithm>
#include <cmath>

#include "ndt/ndt.h"

namespace manic::ytstream {

YoutubeClient::YoutubeClient(SimNetwork& net, VpId vp, Config config)
    : net_(&net),
      vp_(vp),
      config_(config),
      rng_(stats::Rng::HashMix(0x5954, vp)) {}

double YoutubeClient::AvailableMbps(Ipv4Addr cache, TimeSec t, double* rtt_ms) {
  const sim::PathMetrics m =
      net_->MetricsFor(vp_, cache, sim::FlowId{config_.flow}, t);
  if (!m.reachable) {
    *rtt_ms = 0.0;
    return 0.0;
  }
  *rtt_ms = m.rtt_ms;
  const double single = ndt::NdtClient::MathisThroughputMbps(
      m.rtt_ms, m.loss_down, config_.mss_bytes,
      config_.access_plan_mbps / config_.parallel_connections);
  const double tput =
      std::min(config_.access_plan_mbps, single * config_.parallel_connections);
  return tput * std::exp(rng_.Normal(0.0, config_.noise_sigma));
}

StreamResult YoutubeClient::Stream(Ipv4Addr cache, const VideoSpec& video,
                                   TimeSec t,
                                   const std::set<std::uint32_t>& known_far_addrs) {
  StreamResult result;
  result.when = t;

  double rtt_ms = 0.0;
  double avail = AvailableMbps(cache, t, &rtt_ms);
  result.rtt_ms = rtt_ms;
  if (avail <= 0.0 || rng_.Bernoulli(config_.random_failure_prob)) {
    result.failed = true;
    return result;
  }
  // Request-timeout failures under heavy sustained loss.
  const sim::PathMetrics metrics =
      net_->MetricsFor(vp_, cache, sim::FlowId{config_.flow}, t);
  const double p_timeout = std::min(
      config_.loss_failure_max,
      (metrics.loss_down - config_.loss_failure_threshold) *
          config_.loss_failure_slope);
  if (p_timeout > 0.0 && rng_.Bernoulli(p_timeout)) {
    result.failed = true;
    return result;
  }

  // Startup: manifest fetch (2 RTT) + TCP connection (1 RTT) + download of
  // the first `startup_target_s` seconds of video at the available rate.
  const double startup_mbits = video.startup_target_s * video.bitrate_mbps;
  result.startup_delay_s = 3.0 * rtt_ms / 1e3 + startup_mbits / avail;

  // Steady-state playback emulation over segment downloads.
  double clock_s = result.startup_delay_s;
  double buffered_s = video.startup_target_s;
  double played_s = 0.0;
  double on_mbits = 0.0;
  double on_seconds = 0.0;
  bool draining = false;

  while (played_s < video.duration_s) {
    const double downloaded_s = played_s + buffered_s;
    const bool video_complete = downloaded_s >= video.duration_s;
    if (!video_complete && buffered_s < video.buffer_target_s) {
      // ON: fetch the next segment.
      const TimeSec now = t + static_cast<TimeSec>(clock_s);
      avail = AvailableMbps(cache, now, &rtt_ms);
      if (avail < config_.failure_deficit * video.bitrate_mbps) {
        // Player timeout: cannot sustain the selected representation.
        result.failed = true;
        return result;
      }
      const double seg_mbits = video.segment_s * video.bitrate_mbps;
      const double dl_time = seg_mbits / avail;
      on_mbits += seg_mbits;
      on_seconds += dl_time;
      clock_s += dl_time;
      const double played_during = std::min(buffered_s, dl_time);
      buffered_s += video.segment_s - played_during;
      played_s += played_during;
      if (buffered_s <= 0.0) {
        // Buffer depleted before the segment landed: rebuffering.
        ++result.rebuffer_events;
        if (result.rebuffer_events > config_.rebuffer_failure_limit) {
          result.failed = true;
          return result;
        }
        buffered_s = video.segment_s;
        draining = false;
      }
    } else {
      // OFF: buffer full (or video fully fetched); play down one segment.
      const double step = std::min(video.segment_s, video.duration_s - played_s);
      clock_s += step;
      played_s += step;
      buffered_s = std::max(0.0, buffered_s - step);
      if (!video_complete && buffered_s <= 0.0 && !draining) {
        ++result.rebuffer_events;
        draining = true;
        if (result.rebuffer_events > config_.rebuffer_failure_limit) {
          result.failed = true;
          return result;
        }
      }
    }
  }

  result.completed = true;
  result.on_throughput_mbps = on_seconds > 0.0 ? on_mbits / on_seconds : avail;

  probe::Prober prober(*net_, vp_);
  const probe::TracerouteResult trace =
      prober.Traceroute(cache, sim::FlowId{config_.flow}, t);
  for (const probe::TracerouteHop& hop : trace.hops) {
    if (hop.addr && known_far_addrs.contains(hop.addr->value())) {
      result.forward_link = *hop.addr;
      break;
    }
  }
  return result;
}

}  // namespace manic::ytstream
