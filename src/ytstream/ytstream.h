// YouTube streaming performance emulation (§3.5, YouTube-test analogue).
// Streams a video from a cache across the simulated network and emulates the
// playback buffer: an initial burst fills the buffer (startup), then
// steady-state ON/OFF downloading keeps it near a target level. Produces the
// three §5.2 validation metrics: ON-period throughput, startup delay (time
// to stream the first two seconds), and streaming failure (the buffer
// depleting or a segment download failing under heavy loss). A post-test
// traceroute matches the cache path against known border links.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "probe/probe.h"
#include "stats/rng.h"

namespace manic::ytstream {

using sim::SimNetwork;
using sim::TimeSec;
using topo::Ipv4Addr;
using topo::VpId;

struct VideoSpec {
  double bitrate_mbps = 4.5;     // selected representation bitrate
  double duration_s = 90.0;      // >= 1 minute, per the paper's video choice
  double segment_s = 1.0;        // emulated segment granularity
  double startup_target_s = 2.0; // startup delay = time to first 2 s of video
  double buffer_target_s = 12.0; // steady-state buffer level (ON/OFF driver)
};

struct StreamResult {
  double on_throughput_mbps = 0.0; // mean instantaneous rate during ON periods
  double startup_delay_s = 0.0;
  double rtt_ms = 0.0;
  TimeSec when = 0;
  std::optional<Ipv4Addr> forward_link;  // border link crossed toward cache
  int rebuffer_events = 0;
  bool completed = false;  // reached end of video without failure
  bool failed = false;     // aborted: depleted buffer / segment failure
};

class YoutubeClient {
 public:
  struct Config {
    double access_plan_mbps = 100.0;
    double mss_bytes = 1460.0;
    double noise_sigma = 0.06;
    std::uint16_t flow = 0x5954;
    // A segment download fails outright when available throughput falls
    // below this fraction of the bitrate (player timeout).
    double failure_deficit = 0.55;
    double rebuffer_failure_limit = 2;  // rebuffers tolerated before abort
    // YouTube fetches media over several parallel connections / range
    // requests, so its aggregate rate under loss exceeds a single TCP
    // stream's Mathis limit (still capped by the access plan).
    double parallel_connections = 3.5;
    // Background rate of transient failures unrelated to congestion (player
    // errors, cache misses): the nonzero uncongested failure bars of Fig 5.
    double random_failure_prob = 0.01;
    // Heavy sustained loss can abort a stream outright (manifest/segment
    // request timeouts) even when aggregate throughput would suffice:
    // P(fail) = min(max, (loss_down - threshold) * slope).
    double loss_failure_threshold = 0.02;
    double loss_failure_slope = 12.0;
    double loss_failure_max = 0.5;
  };

  YoutubeClient(SimNetwork& net, VpId vp, Config config);
  YoutubeClient(SimNetwork& net, VpId vp) : YoutubeClient(net, vp, Config{}) {}

  StreamResult Stream(Ipv4Addr cache, const VideoSpec& video, TimeSec t,
                      const std::set<std::uint32_t>& known_far_addrs = {});

 private:
  // Available TCP throughput toward the VP at time t (Mathis + access cap).
  double AvailableMbps(Ipv4Addr cache, TimeSec t, double* rtt_ms);

  SimNetwork* net_ = nullptr;
  VpId vp_ = 0;
  Config config_;
  stats::Rng rng_;
};

}  // namespace manic::ytstream
