#include "runtime/study_executor.h"

#include <algorithm>
#include <cstdlib>

namespace manic::runtime {

RuntimeOptions RuntimeOptions::FromEnv(int default_threads) {
  RuntimeOptions options;
  options.threads = default_threads;
  if (const char* env = std::getenv("MANIC_THREADS")) {
    options.threads = std::atoi(env);
  }
  if (const char* env = std::getenv("MANIC_MONTHS_PER_SHARD")) {
    options.months_per_shard = std::atoi(env);
  }
  return options;
}

void StudyExecutor::Execute(
    std::vector<Shard> shards,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  std::stable_sort(shards.begin(), shards.end(),
                   [](const Shard& a, const Shard& b) { return a.key < b.key; });
  {
    MutexLock lock(mu_);
    completed_works_ = 0;
  }
  // Fan out. ParallelFor (rather than bare Submit) lets the calling thread
  // execute shards too, so an exclusive pool is not assumed.
  pool_->ParallelFor(shards.size(), [&](std::size_t i) {
    if (shards[i].work) shards[i].work();
    if (metrics_ != nullptr) metrics_->AddShards();
    MutexLock lock(mu_);
    ++completed_works_;
  });
  // Fold in canonical key order, never completion order.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].merge) shards[i].merge();
    if (progress) progress(i + 1, shards.size());
  }
}

std::size_t StudyExecutor::CompletedWorks() const {
  MutexLock lock(mu_);
  return completed_works_;
}

}  // namespace manic::runtime
