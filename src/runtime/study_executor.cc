#include "runtime/study_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "runtime/parse.h"

namespace manic::runtime {

RuntimeOptions RuntimeOptions::FromEnv(int default_threads) {
  RuntimeOptions options;
  options.threads = default_threads;
  // Env overrides are untrusted text like argv: parse bounded, and fall
  // back to the default rather than letting garbage read as 0.
  if (const char* env = std::getenv("MANIC_THREADS")) {
    bool ok = true;
    const int threads = ParseBoundedInt(env, 0, 4096, &ok);
    if (ok) options.threads = threads;
  }
  if (const char* env = std::getenv("MANIC_MONTHS_PER_SHARD")) {
    bool ok = true;
    const int months = ParseBoundedInt(env, 1, 1200, &ok);
    if (ok) options.months_per_shard = months;
  }
  return options;
}

void StudyExecutor::Execute(
    std::vector<Shard> shards,
    const std::function<void(std::size_t, std::size_t)>& progress,
    CheckpointLog* checkpoint, const WatchdogOptions& watchdog) {
  std::stable_sort(shards.begin(), shards.end(),
                   [](const Shard& a, const Shard& b) { return a.key < b.key; });
  {
    MutexLock lock(mu_);
    completed_works_ = 0;
  }

  // Resume: restore checkpointed shards and drop their work phase. Restore
  // runs here on the calling thread — it is deserialization, not work.
  std::vector<bool> restored(shards.size(), false);
  if (checkpoint != nullptr) {
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (!shards[i].restore) continue;
      const auto blob = checkpoint->Lookup(shards[i].key);
      if (blob.has_value() && shards[i].restore(*blob)) {
        restored[i] = true;
      }
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!restored[i]) pending.push_back(i);
  }

  const auto run_work = [&](std::size_t i) {
    if (shards[i].work) shards[i].work();
    if (metrics_ != nullptr) metrics_->AddShards();
    MutexLock lock(mu_);
    ++completed_works_;
  };

  if (watchdog.stall_timeout_s <= 0.0) {
    // Fan out. ParallelFor (rather than bare Submit) lets the calling thread
    // execute shards too, so an exclusive pool is not assumed.
    pool_->ParallelFor(pending.size(),
                       [&](std::size_t k) { run_work(pending[k]); });
  } else {
    // Watchdog path: per-shard claim states let the caller reclaim shards
    // the pool has not started once the stall deadline passes. 0 = queued,
    // 1 = running, 2 = done.
    struct Tracker {
      std::unique_ptr<std::atomic<int>[]> state;
      std::atomic<std::size_t> done{0};
      Mutex mu;
      CondVar cv;
    };
    const std::size_t n = pending.size();
    Tracker tracker;
    tracker.state = std::make_unique<std::atomic<int>[]>(n);
    for (std::size_t k = 0; k < n; ++k) {
      tracker.state[k].store(0, std::memory_order_relaxed);
    }
    const auto run_claimed = [&](std::size_t k) {
      run_work(pending[k]);
      tracker.state[k].store(2, std::memory_order_release);
      if (tracker.done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        MutexLock lock(tracker.mu);
        tracker.cv.notify_all();
      }
    };
    for (std::size_t k = 0; k < n; ++k) {
      pool_->Submit([&, k] {
        int expected = 0;
        if (tracker.state[k].compare_exchange_strong(
                expected, 1, std::memory_order_acq_rel)) {
          run_claimed(k);
        }
      });
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(watchdog.stall_timeout_s);
    const auto poll =
        std::chrono::duration<double>(std::max(watchdog.poll_interval_s, 0.01));
    bool rescued = false;
    while (tracker.done.load(std::memory_order_acquire) < n) {
      {
        MutexLock lock(tracker.mu);
        if (tracker.done.load(std::memory_order_acquire) >= n) break;
        tracker.cv.wait_for(tracker.mu, poll);
      }
      if (rescued || std::chrono::steady_clock::now() < deadline) continue;
      // Deadline passed with shards unfinished: reclaim everything still
      // queued and run it here; count what is wedged inside the pool.
      rescued = true;
      std::size_t requeued = 0;
      std::size_t stuck = 0;
      for (std::size_t k = 0; k < n; ++k) {
        int expected = 0;
        if (tracker.state[k].compare_exchange_strong(
                expected, 1, std::memory_order_acq_rel)) {
          ++requeued;
          run_claimed(k);
        } else if (expected == 1) {
          ++stuck;
        }
      }
      if (watchdog.on_stall) watchdog.on_stall(requeued, stuck);
    }
    // Caller-claimed shards leave their pool task behind as a CAS-fail
    // no-op; drain them before the tracker (and this frame) goes away.
    pool_->WaitIdle();
  }

  // Fold in canonical key order, never completion order; record each fresh
  // shard's blob as it merges, so the log's record order is canonical too.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].merge) shards[i].merge();
    if (checkpoint != nullptr && !restored[i] && shards[i].save) {
      checkpoint->Record(shards[i].key, shards[i].save());
    }
    if (progress) progress(i + 1, shards.size());
  }
}

std::size_t StudyExecutor::CompletedWorks() const {
  MutexLock lock(mu_);
  return completed_works_;
}

}  // namespace manic::runtime
