// Bounded integer parsing for the untrusted entry points: argv flags, env
// overrides, anything that arrives as text. std::atoi silently returns 0 on
// garbage and has undefined behavior on overflow; every numeric flag in
// bench/ and examples/ goes through ParseBoundedInt instead, which rejects
// trailing junk and enforces an explicit [lo, hi] range. The linter's trust
// pass (tools/manic_lint/trust.txt) declares it a sanitizer: a value that
// came through here is range-checked by construction.
#pragma once

#include <cerrno>
#include <cstdlib>

namespace manic::runtime {

// Parses `text` as a base-10 integer in [lo, hi]. On success returns the
// value and sets *ok to true. On garbage, trailing junk, overflow, or an
// out-of-range value, returns `lo` and sets *ok to false (never touches
// *ok otherwise, so one flag can accumulate across many parses).
inline int ParseBoundedInt(const char* text, int lo, int hi, bool* ok) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    if (ok != nullptr) *ok = false;
    return lo;
  }
  return static_cast<int>(v);
}

}  // namespace manic::runtime
