#include "runtime/thread_pool.h"

#include <algorithm>

namespace manic::runtime {

namespace {
// The pool a worker thread belongs to, for reentrancy detection.
thread_local const ThreadPool* g_current_pool = nullptr;
}  // namespace

int ThreadPool::HardwareThreads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads, Metrics* metrics) : metrics_(metrics) {
  const int n = threads > 0 ? threads : HardwareThreads();
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  if (metrics_ != nullptr) metrics_->SetThreads(n);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    MutexLock lock(wake_mu_);
    wake_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t depth = queued_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (metrics_ != nullptr) metrics_->NoteQueueDepth(depth);
  const std::size_t victim =
      rr_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    Worker& w = *queues_[victim];
    MutexLock lock(w.mu);
    w.tasks.push_back(std::move(task));
  }
  MutexLock lock(wake_mu_);
  wake_cv_.notify_one();
}

bool ThreadPool::RunOne(std::size_t self) {
  const std::size_t n = queues_.size();
  std::function<void()> task;
  std::size_t source = n;
  if (self < n) {
    Worker& w = *queues_[self];
    MutexLock lock(w.mu);
    if (!w.tasks.empty()) {
      task = std::move(w.tasks.front());
      w.tasks.pop_front();
      source = self;
    }
  }
  if (!task) {
    for (std::size_t off = 1; off <= n && !task; ++off) {
      const std::size_t victim = (self + off) % n;
      if (victim == self) continue;
      Worker& w = *queues_[victim];
      MutexLock lock(w.mu);
      if (!w.tasks.empty()) {
        task = std::move(w.tasks.back());
        w.tasks.pop_back();
        source = victim;
      }
    }
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  if (metrics_ != nullptr) {
    metrics_->AddTasks();
    if (self < n && source != self) metrics_->AddSteals();
  }
  task();
  FinishTask();
  return true;
}

void ThreadPool::FinishTask() {
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(idle_mu_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(std::size_t self) {
  g_current_pool = this;
  for (;;) {
    if (RunOne(self)) continue;
    MutexLock lock(wake_mu_);
    wake_cv_.wait(wake_mu_, [&] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::WaitIdle() {
  const std::size_t external = queues_.size();
  while (RunOne(external)) {
  }
  MutexLock lock(idle_mu_);
  idle_cv_.wait(idle_mu_, [&] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  if (n == 0) return;
  if (g_current_pool == this) {
    // Reentrant use from a pool task: run inline rather than deadlock the
    // worker on its own pool.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  grain = std::max<std::size_t>(1, grain);

  struct Latch {
    std::atomic<std::size_t> remaining;
    Mutex mu;
    CondVar cv;
  };
  const std::size_t chunks = (n + grain - 1) / grain;
  auto latch = std::make_shared<Latch>();
  latch->remaining.store(chunks, std::memory_order_relaxed);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    Submit([latch, begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
      if (latch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(latch->mu);
        latch->cv.notify_all();
      }
    });
  }
  // Help until our chunks are gone from the queues, then sleep out the tail.
  const std::size_t external = queues_.size();
  while (latch->remaining.load(std::memory_order_acquire) > 0) {
    if (!RunOne(external)) {
      MutexLock lock(latch->mu);
      latch->cv.wait(latch->mu, [&] {
        return latch->remaining.load(std::memory_order_acquire) == 0;
      });
    }
  }
}

}  // namespace manic::runtime
