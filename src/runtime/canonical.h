// Canonical-order folds over hash containers. Iterating an unordered
// container directly makes downstream accumulation order a function of the
// hash seed and load factor — the exact nondeterminism StudyExecutor's keyed
// merge exists to prevent. These helpers materialize a key-sorted snapshot
// first, so a fold is canonical by construction; they are also the sanctioned
// escape hatch for manic-lint's `unordered-iter` rule (a for-range that goes
// through SortedItems / SortedKeys / CanonicalFold does not fire).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace manic::runtime {

// Key-sorted copy of an associative container's (key, value) pairs.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
SortedItems(const Map& map) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(map.size());
  for (const auto& [key, value] : map) items.emplace_back(key, value);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

// Sorted copy of the keys of a map or the elements of a set.
template <typename Container>
std::vector<typename Container::key_type> SortedKeys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& entry : c) {
    if constexpr (requires { entry.first; }) {
      keys.push_back(entry.first);
    } else {
      keys.push_back(entry);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Applies fn(key, value) in ascending key order.
template <typename Map, typename Fn>
void CanonicalFold(const Map& map, Fn&& fn) {
  for (const auto& [key, value] : SortedItems(map)) fn(key, value);
}

}  // namespace manic::runtime
