// Clang thread-safety annotations plus the annotated lock types the rest of
// the runtime uses. Under Clang, `-Wthread-safety` statically checks that
// every access to a `GUARDED_BY(mu)` member happens with `mu` held (the CI
// clang job builds with -Werror=thread-safety, so a violation fails the
// build); under any other compiler the macros expand to nothing and the
// types degrade to plain std::mutex semantics.
//
// libstdc++'s std::mutex carries no capability annotation, so GUARDED_BY
// cannot name it directly — hence runtime::Mutex (a CAPABILITY-annotated
// wrapper) and runtime::MutexLock (the SCOPED_CAPABILITY RAII guard).
// Condition waits use std::condition_variable_any, which takes the Mutex
// itself as its BasicLockable; the wait-internal unlock/relock happens
// inside a system header, which the analysis deliberately ignores.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MANIC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MANIC_THREAD_ANNOTATION
#define MANIC_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CAPABILITY(x) MANIC_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY MANIC_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) MANIC_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) MANIC_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  MANIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  MANIC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  MANIC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  MANIC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) MANIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) MANIC_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) MANIC_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  MANIC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace manic::runtime {

// An annotated mutual-exclusion capability. The lowercase lock()/unlock()
// aliases make it BasicLockable, so std::condition_variable_any can wait on
// it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII guard over a Mutex, visible to the analysis as a scoped capability.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// The condition type paired with Mutex: condition_variable_any waits on any
// BasicLockable, so `cv.wait(mu, pred)` works with the capability held.
using CondVar = std::condition_variable_any;

}  // namespace manic::runtime
