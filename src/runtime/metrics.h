// Observability for the parallel study-execution engine: cheap atomic
// counters (tasks, steals, shards, peak queue depth) plus named phase timers
// that capture wall-clock and whole-process CPU time, so a bench can show
// per-phase parallel efficiency (cpu/wall ≈ effective thread count) instead
// of asserting a speedup. All mutators are thread-safe; Report()/Json() are
// meant to be called once the measured work has quiesced.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/thread_annotations.h"

namespace manic::runtime {

// Wall clock (seconds) and cumulative CPU time of the whole process
// (seconds, summed over all threads).
double WallSeconds() noexcept;
double ProcessCpuSeconds() noexcept;

class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // ---- counters ------------------------------------------------------------
  void AddTasks(std::uint64_t n = 1) noexcept {
    tasks_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSteals(std::uint64_t n = 1) noexcept {
    steals_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddShards(std::uint64_t n = 1) noexcept {
    shards_.fetch_add(n, std::memory_order_relaxed);
  }
  // Retains the maximum depth ever observed.
  void NoteQueueDepth(std::size_t depth) noexcept;
  void SetThreads(int threads) noexcept {
    threads_.store(threads, std::memory_order_relaxed);
  }

  std::uint64_t tasks() const noexcept {
    return tasks_.load(std::memory_order_relaxed);
  }
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }
  std::uint64_t shards() const noexcept {
    return shards_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_queue_depth() const noexcept {
    return peak_queue_depth_.load(std::memory_order_relaxed);
  }
  int threads() const noexcept {
    return threads_.load(std::memory_order_relaxed);
  }

  // ---- phase timing ----------------------------------------------------------
  // RAII scope: records wall + process-CPU time under `name` on destruction
  // (or Stop()). Repeated phases with the same name accumulate.
  class PhaseTimer {
   public:
    PhaseTimer(Metrics* metrics, std::string name);
    PhaseTimer(PhaseTimer&& other) noexcept;
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;
    PhaseTimer& operator=(PhaseTimer&&) = delete;
    ~PhaseTimer() { Stop(); }
    void Stop();

   private:
    Metrics* metrics_ = nullptr;
    std::string name_;
    double wall_start_ = 0.0;
    double cpu_start_ = 0.0;
  };
  PhaseTimer Phase(std::string name) { return PhaseTimer(this, std::move(name)); }
  void RecordPhase(std::string_view name, double wall_s, double cpu_s);

  // ---- reporting -------------------------------------------------------------
  // Human-readable multi-line report (counters + per-phase table).
  std::string Report() const;
  // The same data as a JSON object, for bench wall-time records.
  std::string Json() const;

  void Reset();

 private:
  struct PhaseStats {
    std::string name;
    double wall_s = 0.0;
    double cpu_s = 0.0;
    std::uint64_t count = 0;
  };

  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> shards_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};
  std::atomic<int> threads_{0};
  mutable Mutex mu_;
  std::vector<PhaseStats> phases_ GUARDED_BY(mu_);  // insertion order =
                                                    // report order
};

}  // namespace manic::runtime
