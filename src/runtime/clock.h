// The event-clock seam for long-running processes. Batch studies are pure
// functions of their inputs and never read a clock; an always-on daemon
// (src/serve) must know when a day has ended, and *how it knows* decides
// whether a recorded stream replays deterministically. Every daemon time
// read therefore goes through a Clock: WallClock for live operation (backed
// by runtime's sanctioned WallSeconds — the determinism-taint lint keeps
// raw clock reads out of every module but this one), ManualClock for tests
// and replay, where time is part of the recorded input, not the
// environment.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/metrics.h"
#include "stats/timeseries.h"

namespace manic::runtime {

class Clock {
 public:
  virtual ~Clock() = default;
  // Seconds since the Unix epoch (the study's day-0 origin).
  virtual stats::TimeSec NowSec() const = 0;
};

// Live time. NowSec() is monotone non-decreasing within a process.
class WallClock final : public Clock {
 public:
  stats::TimeSec NowSec() const override {
    return static_cast<stats::TimeSec>(WallSeconds());
  }
};

// Test / replay time: advances only when told to. Thread-safe.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(stats::TimeSec start_s = 0) : now_s_(start_s) {}

  stats::TimeSec NowSec() const override {
    return now_s_.load(std::memory_order_acquire);
  }
  void Set(stats::TimeSec t) { now_s_.store(t, std::memory_order_release); }
  void Advance(stats::TimeSec delta_s) {
    now_s_.fetch_add(delta_s, std::memory_order_acq_rel);
  }

 private:
  std::atomic<stats::TimeSec> now_s_;
};

}  // namespace manic::runtime
