// Append-only shard checkpoint log. Every completed shard's result is
// serialized as one [key, length, bytes] record; a study killed mid-write
// leaves at most one truncated trailing record, which Load discards — the
// file never needs repair. On resume, shards whose key is already present
// restore their saved blob and skip the work; because merges replay in the
// same canonical key order either way, a resumed study's output is
// byte-identical to an uninterrupted run.
//
// BlobWriter/BlobReader serialize shard state exactly: integers little-
// endian, doubles by bit pattern (std::bit_cast), so a restored double is
// the same 64 bits that were saved, not a round-tripped decimal.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace manic::runtime {

// The fixed prefix of one on-disk checkpoint record: [key][length], both
// little-endian u64, followed by `length` blob bytes. The shape is pinned
// in tools/manic_lint/layout.txt (wire-abi pass) — adding a field here
// would silently orphan every existing checkpoint file, so the pin forces
// a deliberate format-version bump instead.
struct CheckpointRecordHeader {
  std::uint64_t key = 0;
  std::uint64_t length = 0;

  // Encoded size of the prefix; Record() and the load loop both use this
  // rather than a bare 16.
  static constexpr std::uint64_t kEncodedSize = 16;
};

class BlobWriter {
 public:
  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }
  void PutBytes(std::string_view bytes) {
    PutU64(bytes.size());
    buf_.append(bytes);
  }

  const std::string& str() const noexcept { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class BlobReader {
 public:
  explicit BlobReader(std::string_view data) noexcept : data_(data) {}

  bool GetU64(std::uint64_t* out) noexcept {
    if (pos_ + 8 > data_.size()) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }
  bool GetI64(std::int64_t* out) noexcept {
    std::uint64_t v = 0;
    if (!GetU64(&v)) return false;
    *out = static_cast<std::int64_t>(v);
    return true;
  }
  bool GetDouble(double* out) noexcept {
    std::uint64_t v = 0;
    if (!GetU64(&v)) return false;
    *out = std::bit_cast<double>(v);
    return true;
  }
  bool GetBytes(std::string* out) {
    std::uint64_t len = 0;
    if (!GetU64(&len) || pos_ + len > data_.size()) return false;
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool AtEnd() const noexcept { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

class CheckpointLog {
 public:
  // Opens (or creates) the log at `path` and loads every complete record;
  // a truncated trailing record — the signature of a kill mid-write — is
  // dropped silently. A later record for a key shadows an earlier one.
  explicit CheckpointLog(std::string path);

  // Appends one record and flushes it to the file immediately.
  void Record(std::uint64_t key, std::string_view blob);

  // Saved blob for a shard key, if one survived loading.
  std::optional<std::string> Lookup(std::uint64_t key) const;

  bool Has(std::uint64_t key) const { return records_.count(key) != 0; }
  std::size_t size() const noexcept { return records_.size(); }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::map<std::uint64_t, std::string> records_;
};

}  // namespace manic::runtime
