// The I/O fault-injection seam for every durable-file writer (serve WAL,
// replay recordings, checkpoint logs): the same narrow-hook shape as
// sim::FaultHook, but for the syscall layer instead of the network. A writer
// consults the installed hook before each write() attempt, each fsync(), and
// each whole-record append; the hook answers with the fault to simulate —
// short write, EINTR, ENOSPC, fsync failure, or a crash point that kills the
// process after a prescribed number of bytes of the record hit the file.
//
// Every query is a pure function of (script, arguments) — the caller passes
// monotone op/record indices, the hook keeps no mutable state — so a faulted
// run is replayable bit-identically, and tools/crashloop can kill the daemon
// at seeded points and diff recovery against an uncrashed reference. A null
// hook (the production configuration) means no faults; the write loops are
// untouched.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/seed_tree.h"

namespace manic::runtime {

class IoFaultHook {
 public:
  virtual ~IoFaultHook() = default;

  // What one write() attempt should do. kShort delivers only `short_len`
  // bytes (the kernel's short-write contract: the caller must loop);
  // kEintr delivers nothing and fails with EINTR; kEnospc fails the write
  // permanently — the device is full.
  struct WriteFault {
    enum class Kind : std::uint8_t { kPass, kShort, kEintr, kEnospc };
    Kind kind = Kind::kPass;
    std::size_t short_len = 0;
  };

  // Consulted before write attempt `op` (a per-writer monotone counter) of
  // `len` bytes.
  virtual WriteFault WriteAt(std::uint64_t /*op*/, std::size_t /*len*/) const {
    return {};
  }

  // False: fsync attempt `op` reports failure (EIO — the page cache could
  // not reach the platter).
  virtual bool FsyncOkAt(std::uint64_t /*op*/) const { return true; }

  // Crash point for whole-record appends: a non-negative return means the
  // writer must emit exactly that many bytes of record `record` (clamped to
  // the record size), make them visible, and then _Exit — a kill mid-append.
  // -1 = no crash at this record.
  virtual std::int64_t CrashBytesAt(std::uint64_t /*record*/) const {
    return -1;
  }
};

// A seeded fault script over the hook: independent per-op short-write and
// EINTR draws from a SeedTree, one optional ENOSPC op, one optional fsync
// failure, and one optional crash point. Deterministic by construction —
// the same config yields the same fault sequence on every run.
class ScriptedIoFaults final : public IoFaultHook {
 public:
  struct Config {
    std::uint64_t seed = 0;
    double short_write_prob = 0.0;  // per write attempt
    double eintr_prob = 0.0;        // per write attempt
    std::int64_t enospc_at_op = -1;   // write op index that hits ENOSPC
    std::int64_t fail_fsync_at = -1;  // fsync op index that fails
    std::int64_t crash_at_record = -1;  // record index to die inside
    std::int64_t crash_bytes = 0;       // bytes of that record to emit first
  };

  explicit ScriptedIoFaults(Config config);

  WriteFault WriteAt(std::uint64_t op, std::size_t len) const override;
  bool FsyncOkAt(std::uint64_t op) const override;
  std::int64_t CrashBytesAt(std::uint64_t record) const override;

 private:
  Config config_;
  SeedTree tree_;
};

}  // namespace manic::runtime
