#include "runtime/metrics.h"

#include <time.h>

#include <chrono>
#include <cstdio>

namespace manic::runtime {

double WallSeconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ProcessCpuSeconds() noexcept {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

void Metrics::NoteQueueDepth(std::size_t depth) noexcept {
  std::uint64_t cur = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > cur && !peak_queue_depth_.compare_exchange_weak(
                            cur, depth, std::memory_order_relaxed)) {
  }
}

Metrics::PhaseTimer::PhaseTimer(Metrics* metrics, std::string name)
    : metrics_(metrics),
      name_(std::move(name)),
      wall_start_(WallSeconds()),
      cpu_start_(ProcessCpuSeconds()) {}

Metrics::PhaseTimer::PhaseTimer(PhaseTimer&& other) noexcept
    : metrics_(other.metrics_),
      name_(std::move(other.name_)),
      wall_start_(other.wall_start_),
      cpu_start_(other.cpu_start_) {
  other.metrics_ = nullptr;
}

void Metrics::PhaseTimer::Stop() {
  if (metrics_ == nullptr) return;
  metrics_->RecordPhase(name_, WallSeconds() - wall_start_,
                        ProcessCpuSeconds() - cpu_start_);
  metrics_ = nullptr;
}

void Metrics::RecordPhase(std::string_view name, double wall_s, double cpu_s) {
  MutexLock lock(mu_);
  for (PhaseStats& phase : phases_) {
    if (phase.name == name) {
      phase.wall_s += wall_s;
      phase.cpu_s += cpu_s;
      phase.count += 1;
      return;
    }
  }
  phases_.push_back({std::string(name), wall_s, cpu_s, 1});
}

std::string Metrics::Report() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "runtime metrics: threads=%d shards=%llu tasks=%llu "
                "steals=%llu peak-queue=%llu\n",
                threads(), static_cast<unsigned long long>(shards()),
                static_cast<unsigned long long>(tasks()),
                static_cast<unsigned long long>(steals()),
                static_cast<unsigned long long>(peak_queue_depth()));
  out += line;
  MutexLock lock(mu_);
  if (phases_.empty()) return out;
  std::snprintf(line, sizeof(line), "  %-24s %10s %10s %6s\n", "phase",
                "wall (s)", "cpu (s)", "cpu/w");
  out += line;
  for (const PhaseStats& phase : phases_) {
    std::snprintf(line, sizeof(line), "  %-24s %10.3f %10.3f %5.1fx\n",
                  phase.name.c_str(), phase.wall_s, phase.cpu_s,
                  phase.wall_s > 0 ? phase.cpu_s / phase.wall_s : 0.0);
    out += line;
  }
  return out;
}

std::string Metrics::Json() const {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"threads\":%d,\"shards\":%llu,\"tasks\":%llu,"
                "\"steals\":%llu,\"peak_queue_depth\":%llu,\"phases\":[",
                threads(), static_cast<unsigned long long>(shards()),
                static_cast<unsigned long long>(tasks()),
                static_cast<unsigned long long>(steals()),
                static_cast<unsigned long long>(peak_queue_depth()));
  out += buf;
  MutexLock lock(mu_);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const PhaseStats& phase = phases_[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"wall_s\":%.6f,\"cpu_s\":%.6f,"
                  "\"count\":%llu}",
                  i == 0 ? "" : ",", phase.name.c_str(), phase.wall_s,
                  phase.cpu_s, static_cast<unsigned long long>(phase.count));
    out += buf;
  }
  out += "]}";
  return out;
}

void Metrics::Reset() {
  tasks_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  shards_.store(0, std::memory_order_relaxed);
  peak_queue_depth_.store(0, std::memory_order_relaxed);
  MutexLock lock(mu_);
  phases_.clear();
}

}  // namespace manic::runtime
