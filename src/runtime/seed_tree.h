// Deterministic seed derivation for sharded execution. Every shard derives
// its noise seeds from the study's root seed plus *stable* keys (VP id, link
// id, month index, a purpose tag) — never a thread id, shard-completion
// order, or anything the scheduler influences — so a study partitioned any
// way across any number of threads consumes exactly the same random streams
// as the serial run.
//
// Derivation is SplitMix64-based (stats::Rng::HashMix): Leaf(a, b) on a tree
// rooted at `seed` equals HashMix(seed, a, b), which keeps the historical
// noise keys of the study driver (HashMix(options.seed, vp, link)) stable
// under this scheme.
#pragma once

#include <cstdint>
#include <string_view>

#include "stats/rng.h"

namespace manic::runtime {

class SeedTree {
 public:
  explicit constexpr SeedTree(std::uint64_t seed) noexcept : seed_(seed) {}

  constexpr std::uint64_t seed() const noexcept { return seed_; }

  // Child subtree for a stable key. Child(k) != Leaf(k): children are salted
  // so that descending and drawing never collide.
  SeedTree Child(std::uint64_t key) const noexcept {
    return SeedTree(stats::Rng::HashMix(seed_, key, kChildSalt));
  }
  // Named child (key hashed from the bytes of `name`), for purpose tags like
  // Child("tslp") vs Child("churn").
  SeedTree Child(std::string_view name) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the tag bytes
    for (const char c : name) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    return Child(h);
  }

  // Leaf draw: 64 uniform bits for up to two stable keys. Identical to
  // stats::Rng::HashMix(seed(), a, b) by contract (tested).
  std::uint64_t Leaf(std::uint64_t a, std::uint64_t b = 0) const noexcept {
    return stats::Rng::HashMix(seed_, a, b);
  }
  // Leaf mapped to [0, 1).
  double LeafUnit(std::uint64_t a, std::uint64_t b = 0) const noexcept {
    return stats::Rng::HashToUnit(seed_, a, b);
  }
  // A sequential generator seeded at a leaf, for shards that need a stream.
  stats::Rng LeafRng(std::uint64_t a, std::uint64_t b = 0) const noexcept {
    return stats::Rng(Leaf(a, b));
  }

 private:
  static constexpr std::uint64_t kChildSalt = 0x9e6b5e1fc4d21a87ULL;

  std::uint64_t seed_ = 0;
};

}  // namespace manic::runtime
