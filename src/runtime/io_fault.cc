#include "runtime/io_fault.h"

namespace manic::runtime {

ScriptedIoFaults::ScriptedIoFaults(Config config)
    : config_(config), tree_(SeedTree(config.seed).Child("io-faults")) {}

IoFaultHook::WriteFault ScriptedIoFaults::WriteAt(std::uint64_t op,
                                                  std::size_t len) const {
  WriteFault fault;
  if (config_.enospc_at_op >= 0 &&
      op == static_cast<std::uint64_t>(config_.enospc_at_op)) {
    fault.kind = WriteFault::Kind::kEnospc;
    return fault;
  }
  if (config_.eintr_prob > 0.0 && tree_.LeafUnit(op, 1) < config_.eintr_prob) {
    fault.kind = WriteFault::Kind::kEintr;
    return fault;
  }
  if (len > 1 && config_.short_write_prob > 0.0 &&
      tree_.LeafUnit(op, 2) < config_.short_write_prob) {
    fault.kind = WriteFault::Kind::kShort;
    // Deliver a seeded fraction of the attempt, at least one byte, so the
    // retry loop has to finish the record across several attempts.
    fault.short_len =
        1 + static_cast<std::size_t>(tree_.LeafUnit(op, 3) *
                                     static_cast<double>(len - 1));
    return fault;
  }
  return fault;
}

bool ScriptedIoFaults::FsyncOkAt(std::uint64_t op) const {
  return config_.fail_fsync_at < 0 ||
         op != static_cast<std::uint64_t>(config_.fail_fsync_at);
}

std::int64_t ScriptedIoFaults::CrashBytesAt(std::uint64_t record) const {
  if (config_.crash_at_record >= 0 &&
      record == static_cast<std::uint64_t>(config_.crash_at_record)) {
    return config_.crash_bytes < 0 ? 0 : config_.crash_bytes;
  }
  return -1;
}

}  // namespace manic::runtime
