// Work-stealing thread pool. Each worker owns a deque: it pops its own work
// from the front and steals from the back of a victim's deque when empty;
// submissions are distributed round-robin. The caller of ParallelFor also
// executes tasks while it waits, so a 1-worker pool still uses two cores
// under ParallelFor and small pools are never idle-blocked on a busy main
// thread.
//
// Determinism contract: the pool makes NO ordering promises — any task may
// run on any worker at any time. Deterministic parallel programs built on it
// must (a) give every task an isolated output buffer and (b) fold buffers in
// an order chosen by stable task keys (see runtime::StudyExecutor), never in
// completion order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/thread_annotations.h"

namespace manic::runtime {

class ThreadPool {
 public:
  // threads <= 0 selects hardware_concurrency. `metrics` (optional) receives
  // task/steal/queue-depth counters; it must outlive the pool.
  explicit ThreadPool(int threads = 0, Metrics* metrics = nullptr);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return static_cast<int>(queues_.size()); }

  // Enqueues one task. Tasks must not throw (the pool does not transport
  // exceptions; an escaping exception terminates the process).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. The calling thread helps
  // execute queued tasks while it waits.
  void WaitIdle();

  // Runs body(i) for every i in [0, n), chunked by `grain`, and blocks until
  // all complete; the calling thread participates. Reentrant calls from
  // inside a pool task run the loop inline (serially) to avoid deadlock.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                   std::size_t grain = 1);

  static int HardwareThreads() noexcept;

 private:
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(std::size_t self);
  // Runs one task popped from `self`'s deque (front) or stolen from another
  // worker (back). `self` == queues_.size() means an external helper thread
  // (WaitIdle / ParallelFor caller): it only steals.
  bool RunOne(std::size_t self);
  void FinishTask();

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> threads_;
  Mutex wake_mu_;
  CondVar wake_cv_;
  Mutex idle_mu_;
  CondVar idle_cv_;
  std::atomic<std::size_t> queued_{0};    // tasks sitting in deques
  std::atomic<std::size_t> inflight_{0};  // queued + currently running
  std::atomic<std::size_t> rr_{0};
  std::atomic<bool> stop_{false};
  Metrics* metrics_ = nullptr;
};

}  // namespace manic::runtime
