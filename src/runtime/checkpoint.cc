#include "runtime/checkpoint.h"

#include <filesystem>
#include <fstream>

namespace manic::runtime {

namespace {

constexpr char kMagic[] = "MANICCKPT1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

std::uint64_t ReadU64(const std::string& data, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  return v;
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

CheckpointLog::CheckpointLog(std::string path) : path_(std::move(path)) {
  std::ifstream is(path_, std::ios::binary);
  if (!is) {
    // New log: stamp the header so a later open can validate it.
    std::ofstream os(path_, std::ios::binary);
    os.write(kMagic, static_cast<std::streamsize>(kMagicLen));
    return;
  }
  std::string data((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  if (data.size() < kMagicLen ||
      data.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return;  // foreign or empty file: treat as no completed shards
  }
  constexpr std::size_t kHeader = CheckpointRecordHeader::kEncodedSize;
  std::size_t pos = kMagicLen;
  while (pos + kHeader <= data.size()) {
    CheckpointRecordHeader header;
    header.key = ReadU64(data, pos);
    header.length = ReadU64(data, pos + 8);
    if (pos + kHeader + header.length > data.size()) {
      break;  // truncated tail: kill mid-write
    }
    records_[header.key] = data.substr(pos + kHeader, header.length);
    pos += kHeader + header.length;
  }
  if (pos < data.size()) {
    // Chop the torn record off the file, not just the parse: Record()
    // appends, and bytes of a half-written record in the middle would
    // corrupt every later reload.
    is.close();
    std::error_code ec;
    std::filesystem::resize_file(path_, pos, ec);
  }
}

void CheckpointLog::Record(std::uint64_t key, std::string_view blob) {
  CheckpointRecordHeader header;
  header.key = key;
  header.length = blob.size();
  std::string rec;
  rec.reserve(CheckpointRecordHeader::kEncodedSize + blob.size());
  AppendU64(rec, header.key);
  AppendU64(rec, header.length);
  rec.append(blob);
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  os.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  os.flush();
  records_[key] = std::string(blob);
}

std::optional<std::string> CheckpointLog::Lookup(std::uint64_t key) const {
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

}  // namespace manic::runtime
