// The deterministic fork/join skeleton of the parallel study engine. A study
// is cut into shards keyed by stable identifiers ((VP, link, month-chunk) in
// the longitudinal driver); every shard's `work` runs concurrently on the
// pool and writes only to buffers it owns, then every shard's `merge` runs
// on the calling thread in ascending key order. Because the merge order is a
// pure function of the keys — never of scheduling — the folded result is
// bit-identical run-to-run and thread-count-to-thread-count, floating-point
// accumulation order included.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/checkpoint.h"
#include "runtime/metrics.h"
#include "runtime/thread_annotations.h"
#include "runtime/thread_pool.h"

namespace manic::runtime {

// Knobs for parallel study execution, carried inside scenario::StudyOptions.
struct RuntimeOptions {
  // 1 = the serial reference path (no pool); 0 = hardware_concurrency;
  // N > 1 = sharded execution on N workers.
  int threads = 1;
  // Shard granularity: 0 = one shard per (VP, link) pair spanning the whole
  // study window; N > 0 = additionally split each pair into N-month chunks
  // (finer load balancing, ~window/30 days of warmup replay per extra chunk).
  int months_per_shard = 0;
  // Optional observability sink (counters + per-phase timing); must outlive
  // the study run. Null = metrics are discarded.
  Metrics* metrics = nullptr;

  int ResolvedThreads() const noexcept {
    return threads > 0 ? threads : ThreadPool::HardwareThreads();
  }

  // Reads MANIC_THREADS (default `default_threads`) and
  // MANIC_MONTHS_PER_SHARD (default 0) — the bench/example entry points'
  // configuration surface.
  static RuntimeOptions FromEnv(int default_threads = 0);
};

// Stall watchdog for the parallel phase. When stall_timeout_s elapses and
// unfinished shards remain, shards still *queued* are reclaimed from the
// pool and executed on the calling thread (a wedged pool cannot strand
// them); shards already *running* cannot be preempted and are only
// reported. `on_stall(requeued, stuck)` fires once, at reclaim time.
// Because shard works own isolated buffers and merges replay in key order,
// where a shard ran never shows in the output.
struct WatchdogOptions {
  double stall_timeout_s = 0.0;  // 0: watchdog disabled
  double poll_interval_s = 0.5;
  std::function<void(std::size_t requeued, std::size_t stuck)> on_stall;
};

class StudyExecutor {
 public:
  struct Shard {
    std::uint64_t key = 0;  // stable identity; also the canonical merge rank
    std::function<void()> work;   // parallel phase; owns its output buffer
    std::function<void()> merge;  // serial phase; folds the buffer in
    // Checkpoint seam (both or neither): `save` serializes the work buffer
    // after the work phase; `restore` repopulates it from a saved blob so
    // the work can be skipped, returning false to reject the blob (format
    // drift) and recompute.
    std::function<std::string()> save;
    std::function<bool(const std::string&)> restore;
  };

  // The executor borrows the pool; `metrics` (optional) counts shards.
  explicit StudyExecutor(ThreadPool& pool, Metrics* metrics = nullptr)
      : pool_(&pool), metrics_(metrics) {}

  // Runs all shard works concurrently (the calling thread participates),
  // then merges serially in ascending (key, insertion-index) order.
  // `progress(done, total)` fires from the calling thread after each merge.
  //
  // With a CheckpointLog, shards whose key has a saved blob restore it and
  // skip the work phase; every other shard is recorded (in canonical merge
  // order) once its work completes — so a killed study resumes where it
  // stopped and its final fold is byte-identical to an uninterrupted run.
  // With WatchdogOptions::stall_timeout_s > 0, the parallel phase runs under
  // the stall watchdog.
  void Execute(std::vector<Shard> shards,
               const std::function<void(std::size_t, std::size_t)>& progress =
                   {},
               CheckpointLog* checkpoint = nullptr,
               const WatchdogOptions& watchdog = {});

  // Shard works finished so far in the current (or most recent) Execute()
  // call's parallel phase. Workers bump it concurrently, so it is the one
  // piece of cross-thread mutable state the executor owns; a monitor thread
  // may poll it for liveness.
  std::size_t CompletedWorks() const EXCLUDES(mu_);

 private:
  ThreadPool* pool_ = nullptr;
  Metrics* metrics_ = nullptr;
  mutable Mutex mu_;
  std::size_t completed_works_ GUARDED_BY(mu_) = 0;
};

}  // namespace manic::runtime
