// Umbrella header for the MANIC library: a C++20 reproduction of
// "Inferring Persistent Interdomain Congestion" (SIGCOMM 2018).
//
// Layering (each header is also usable on its own):
//
//   stats/    — time series, RNG, descriptive statistics, hypothesis tests
//   tsdb/     — tagged time-series database + public query API
//   topo/     — IPv4/prefixes/trie, AS registries, routers/links/topologies
//   sim/      — the live-Internet substitute: routing, demand, queues, ICMP
//   probe/    — ping / Paris traceroute / probing budgets
//   bdrmap/   — border mapping + MAP-IT-style remote borders
//   tslp/     — the TSLP probing scheduler
//   lossprobe/— high-frequency loss measurement
//   ndt/      — NDT-style throughput tests
//   ytstream/ — YouTube-style streaming emulation
//   infer/    — level-shift + autocorrelation congestion inference
//   analysis/ — validation harnesses, day-link aggregation, reports
//   scenario/ — ready-made worlds (small test world, U.S. broadband study)
//   serve/    — streaming ingest daemon + live query plane (MANIC-as-a-service)
#pragma once

#include "analysis/classify.h"
#include "analysis/daylink.h"
#include "analysis/loss_validation.h"
#include "analysis/path_signature.h"
#include "analysis/report.h"
#include "bdrmap/bdrmap.h"
#include "bdrmap/mapit.h"
#include "infer/autocorr.h"
#include "infer/data_quality.h"
#include "infer/level_shift.h"
#include "infer/rolling.h"
#include "infer/streaming.h"
#include "lossprobe/lossprobe.h"
#include "ndt/ndt.h"
#include "probe/probe.h"
#include "scenario/driver.h"
#include "scenario/small.h"
#include "scenario/us_broadband.h"
#include "serve/codec.h"
#include "serve/daemon.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "serve/replay.h"
#include "serve/ring.h"
#include "serve/sample.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/verdict.h"
#include "sim/demand.h"
#include "sim/link_model.h"
#include "sim/network.h"
#include "sim/packet_queue.h"
#include "sim/routing.h"
#include "stats/calendar.h"
#include "stats/descriptive.h"
#include "stats/rng.h"
#include "stats/special.h"
#include "stats/tests.h"
#include "stats/timeseries.h"
#include "topo/as_registry.h"
#include "topo/ipv4.h"
#include "topo/prefix_trie.h"
#include "topo/topology.h"
#include "tsdb/query_api.h"
#include "tsdb/tsdb.h"
#include "tslp/tslp.h"
#include "ytstream/ytstream.h"
