// Binary (unibit) trie keyed by IPv4 prefixes with longest-prefix-match
// lookup. This is the prefix-to-AS mapping structure bdrmap consumes (§3.2):
// built from synthetic "BGP" announcements, queried per traceroute hop.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topo/ipv4.h"

namespace manic::topo {

template <typename V>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  // Inserts or overwrites the value at `prefix`.
  void Insert(const Prefix& prefix, V value) {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      std::uint32_t& child = nodes_[node].child[bit];
      if (child == 0) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{});
      }
      node = nodes_[node].child[bit];
    }
    if (!nodes_[node].value.has_value()) ++size_;
    nodes_[node].value = std::move(value);
  }

  // Longest-prefix match; nullopt when no covering prefix exists.
  std::optional<V> Lookup(Ipv4Addr addr) const {
    std::optional<V> best;
    std::uint32_t node = 0;
    const std::uint32_t bits = addr.value();
    for (int depth = 0;; ++depth) {
      if (nodes_[node].value.has_value()) best = nodes_[node].value;
      if (depth == 32) break;
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == 0) break;
      node = child;
    }
    return best;
  }

  // Longest matching prefix itself (with its value), if any.
  std::optional<std::pair<Prefix, V>> LookupEntry(Ipv4Addr addr) const {
    std::optional<std::pair<Prefix, V>> best;
    std::uint32_t node = 0;
    const std::uint32_t bits = addr.value();
    for (int depth = 0;; ++depth) {
      if (nodes_[node].value.has_value()) {
        best = {Prefix(addr, depth), *nodes_[node].value};
      }
      if (depth == 32) break;
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == 0) break;
      node = child;
    }
    return best;
  }

  // Exact-match lookup of a stored prefix.
  std::optional<V> Exact(const Prefix& prefix) const {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[node].child[bit];
      if (child == 0) return std::nullopt;
      node = child;
    }
    return nodes_[node].value;
  }

  std::size_t size() const noexcept { return size_; }

  // Enumerates all (prefix, value) entries in lexicographic bit order.
  std::vector<std::pair<Prefix, V>> Entries() const {
    std::vector<std::pair<Prefix, V>> out;
    Walk(0, 0u, 0, out);
    return out;
  }

 private:
  struct Node {
    std::uint32_t child[2] = {0, 0};
    std::optional<V> value;
  };

  void Walk(std::uint32_t node, std::uint32_t bits, int depth,
            std::vector<std::pair<Prefix, V>>& out) const {
    if (nodes_[node].value.has_value()) {
      out.push_back({Prefix(Ipv4Addr(bits), depth), *nodes_[node].value});
    }
    if (depth == 32) return;
    for (int bit = 0; bit < 2; ++bit) {
      const std::uint32_t child = nodes_[node].child[bit];
      if (child != 0) {
        const std::uint32_t next_bits =
            bits | (static_cast<std::uint32_t>(bit) << (31 - depth));
        Walk(child, next_bits, depth + 1, out);
      }
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace manic::topo
