// IPv4 addresses and CIDR prefixes. Addresses are plain uint32 host-order
// values wrapped for type safety; prefixes are (address, length) with
// canonicalized (masked) network addresses.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace manic::topo {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }

  std::string ToString() const;
  static std::optional<Ipv4Addr> Parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

class Prefix {
 public:
  constexpr Prefix() = default;
  // Masks `addr` down to the network address for `len` bits.
  constexpr Prefix(Ipv4Addr addr, int len) noexcept
      : addr_(Ipv4Addr(len == 0 ? 0u : (addr.value() & (~std::uint32_t{0} << (32 - len))))),
        len_(len) {}

  constexpr Ipv4Addr address() const noexcept { return addr_; }
  constexpr int length() const noexcept { return len_; }

  constexpr bool Contains(Ipv4Addr a) const noexcept {
    if (len_ == 0) return true;
    const std::uint32_t mask = ~std::uint32_t{0} << (32 - len_);
    return (a.value() & mask) == addr_.value();
  }
  constexpr bool Contains(const Prefix& other) const noexcept {
    return other.len_ >= len_ && Contains(other.addr_);
  }

  // Number of addresses covered (2^(32-len)); 0 means 2^32 for len 0.
  constexpr std::uint64_t Size() const noexcept {
    return std::uint64_t{1} << (32 - len_);
  }

  // First/last address in the prefix.
  constexpr Ipv4Addr First() const noexcept { return addr_; }
  constexpr Ipv4Addr Last() const noexcept {
    return Ipv4Addr(addr_.value() + static_cast<std::uint32_t>(Size() - 1));
  }

  std::string ToString() const;
  static std::optional<Prefix> Parse(std::string_view text);

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Addr addr_;
  int len_ = 0;
};

}  // namespace manic::topo
