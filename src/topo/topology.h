// The structural network model: ASes, routers, interfaces, links, address
// allocation, and prefix announcements. Dynamic behaviour (queues, demand,
// ICMP handling) lives in manic::sim and is keyed by the identifiers defined
// here. The builder API lets scenarios assemble arbitrary interdomain
// topologies; addresses for interdomain links can be drawn from either
// side's infrastructure space, which is precisely what makes border mapping
// nontrivial (§3.2).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "topo/as_registry.h"
#include "topo/ipv4.h"
#include "topo/prefix_trie.h"

namespace manic::topo {

using RouterId = std::uint32_t;
using IfaceId = std::uint32_t;
using LinkId = std::uint32_t;
using VpId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = std::numeric_limits<std::uint32_t>::max();

enum class LinkKind : std::uint8_t {
  kIntra,        // both routers in the same AS
  kInterdomain,  // border link between two ASes (the measurement target)
  kIxp,          // interdomain link across an IXP fabric (addresses from IXP space)
  kHostUplink,   // VP host to its first-hop router
};

struct Interface {
  IfaceId id = kInvalidId;
  Ipv4Addr addr;
  RouterId router = kInvalidId;
  LinkId link = kInvalidId;
  Asn addr_owner = 0;  // AS (or IXP pseudo-AS) whose space the address is from
};

// Per-router ICMP behaviour knobs, consumed by the simulator.
struct IcmpProfile {
  double rate_limit_pps = 1000.0;   // ICMP generation cap (token bucket)
  double slow_path_prob = 0.0;      // probability of control-plane delay
  double slow_path_extra_ms = 30.0; // added latency when slow-path hit
  double response_loss_prob = 0.0;  // unconditional response drop probability
  bool responds = true;             // some routers never answer
};

struct Router {
  std::string name;
  std::string city;
  std::vector<IfaceId> interfaces;
  IcmpProfile icmp;
  RouterId id = kInvalidId;
  Asn owner = 0;
  int utc_offset_hours = 0;  // local time for diurnal demand & Fig 9
  // Monotonic IP-ID counter shared across interfaces: the signal the Ally
  // alias-resolution technique exploits.
  mutable std::uint32_t ip_id_counter = 0;
};

// The physical parameters of a link, grouped so every construction path
// (the three Connect* builders, AddVantagePoint's host uplink) names the
// units exactly once instead of threading two loose doubles around.
struct LinkParams {
  double propagation_ms = 1.0;   // one-way propagation delay
  double capacity_gbps = 100.0;  // nominal capacity (sim reads this)
};

struct Link {
  LinkId id = kInvalidId;
  LinkKind kind = LinkKind::kIntra;
  IfaceId iface_a = kInvalidId;  // on router_a
  IfaceId iface_b = kInvalidId;  // on router_b
  RouterId router_a = kInvalidId;
  RouterId router_b = kInvalidId;
  Asn as_a = 0;
  Asn as_b = 0;
  LinkParams params;

  // Field-style accessors so readers keep the unit in sight at the use site
  // (`l.propagation_ms()`), whatever construction path filled `params`.
  double propagation_ms() const noexcept { return params.propagation_ms; }
  double capacity_gbps() const noexcept { return params.capacity_gbps; }
};

struct AsInfo {
  Asn asn = 0;
  std::string name;
  std::vector<RouterId> routers;
  std::vector<Prefix> announced;       // "BGP"-visible prefixes
  std::vector<Prefix> infrastructure;  // router/link addressing pools
};

// A measurement vantage point: a host inside an access network (§3).
struct VantagePoint {
  VpId id = kInvalidId;
  std::string name;       // e.g. "mry-us"
  Asn host_as = 0;
  RouterId first_hop = kInvalidId;  // attachment router
  Ipv4Addr addr;          // host address (from host AS announced space)
  LinkId uplink = kInvalidId;
};

class Topology {
 public:
  // ---- construction -------------------------------------------------------
  AsInfo& AddAs(Asn asn, std::string name);
  RouterId AddRouter(Asn asn, std::string name, std::string city = "",
                     int utc_offset_hours = 0);

  // Announces a prefix as originated by `asn` (appears in the synthetic BGP
  // table bdrmap traces toward).
  void Announce(Asn asn, const Prefix& prefix);
  // Registers an infrastructure pool used to number `asn`'s interfaces.
  void AddInfrastructure(Asn asn, const Prefix& prefix);

  // Connects two routers of one AS.
  LinkId ConnectIntra(RouterId a, RouterId b, double propagation_ms = 0.5,
                      double capacity_gbps = 400.0) {
    return ConnectIntra(a, b, LinkParams{propagation_ms, capacity_gbps});
  }
  LinkId ConnectIntra(RouterId a, RouterId b, LinkParams params);

  // Connects border routers of two different ASes. Interface addresses are
  // drawn as a point-to-point pair from `addr_from`'s infrastructure space
  // (defaults to router a's AS — so the far interface commonly carries
  // near-side address space, the classic border-mapping pitfall).
  LinkId ConnectInter(RouterId a, RouterId b, double propagation_ms = 2.0,
                      double capacity_gbps = 100.0,
                      std::optional<Asn> addr_from = std::nullopt) {
    return ConnectInter(a, b, LinkParams{propagation_ms, capacity_gbps},
                        addr_from);
  }
  LinkId ConnectInter(RouterId a, RouterId b, LinkParams params,
                      std::optional<Asn> addr_from = std::nullopt);

  // Connects border routers of two ASes across an IXP fabric: both interface
  // addresses come from the IXP prefix (registered in the IxpRegistry).
  LinkId ConnectAtIxp(RouterId a, RouterId b, const Prefix& ixp_prefix,
                      std::string ixp_name, double propagation_ms = 2.0,
                      double capacity_gbps = 100.0) {
    return ConnectAtIxp(a, b, ixp_prefix, std::move(ixp_name),
                        LinkParams{propagation_ms, capacity_gbps});
  }
  LinkId ConnectAtIxp(RouterId a, RouterId b, const Prefix& ixp_prefix,
                      std::string ixp_name, LinkParams params);

  // The parameters AddVantagePoint assigns to the host uplink it creates.
  static constexpr LinkParams kHostUplinkParams{1.0, 1.0};

  VpId AddVantagePoint(std::string name, Asn host_as, RouterId first_hop);

  // ---- accessors ----------------------------------------------------------
  const AsInfo* FindAs(Asn asn) const noexcept;
  const Router& router(RouterId id) const noexcept { return routers_[id]; }
  Router& router(RouterId id) noexcept { return routers_[id]; }
  const Interface& iface(IfaceId id) const noexcept { return ifaces_[id]; }
  const Link& link(LinkId id) const noexcept { return links_[id]; }
  Link& link(LinkId id) noexcept { return links_[id]; }
  const VantagePoint& vp(VpId id) const noexcept { return vps_[id]; }

  std::size_t RouterCount() const noexcept { return routers_.size(); }
  std::size_t LinkCount() const noexcept { return links_.size(); }
  std::size_t IfaceCount() const noexcept { return ifaces_.size(); }
  std::size_t VpCount() const noexcept { return vps_.size(); }
  const std::vector<Link>& links() const noexcept { return links_; }
  const std::vector<VantagePoint>& vps() const noexcept { return vps_; }
  const std::map<Asn, AsInfo>& ases() const noexcept { return ases_; }

  // Interface lookup by address (exact).
  std::optional<IfaceId> IfaceByAddr(Ipv4Addr addr) const noexcept;

  // The other end of `link` relative to router `from`.
  RouterId PeerRouter(const Link& link, RouterId from) const noexcept;
  // The interface of `link` sitting on router `r`.
  IfaceId IfaceOn(const Link& link, RouterId r) const noexcept;

  // Links of a router, optionally filtered by kind.
  std::vector<LinkId> LinksOf(RouterId r,
                              std::optional<LinkKind> kind = std::nullopt) const;

  // All interdomain/IXP links between the two ASes (either order).
  std::vector<LinkId> InterdomainLinksBetween(Asn a, Asn b) const;

  // Prefix-to-AS longest-prefix-match table built from announcements
  // (RouteViews/RIS analogue). Rebuilt lazily after announcements change.
  const PrefixTrie<Asn>& Prefix2As() const;

  // A probeable destination address inside an announced prefix of `asn`
  // (deterministically the k-th host address of the i-th prefix).
  std::optional<Ipv4Addr> DestinationIn(Asn asn, std::size_t index = 0) const;

  // All announced prefixes with origin AS (the "routed prefixes" bdrmap
  // traces toward).
  std::vector<std::pair<Prefix, Asn>> RoutedPrefixes() const;

  // External registries (inputs to bdrmap).
  RelationshipTable relationships;
  OrgMap orgs;
  IxpRegistry ixps;

 private:
  IfaceId NewIface(RouterId router, LinkId link, Ipv4Addr addr, Asn owner);
  Ipv4Addr AllocInfraPair(Asn asn, Ipv4Addr* second);
  Ipv4Addr AllocFromPrefix(const Prefix& p, std::uint64_t* cursor,
                           Ipv4Addr* second);
  Ipv4Addr AllocSingle(Asn asn);

  std::map<Asn, AsInfo> ases_;
  std::vector<Router> routers_;
  std::vector<Interface> ifaces_;
  std::vector<Link> links_;
  std::vector<VantagePoint> vps_;
  std::map<std::uint32_t, IfaceId> addr_index_;
  std::map<Asn, std::uint64_t> infra_cursor_;
  std::map<std::string, std::uint64_t> ixp_cursor_;
  std::map<Asn, std::uint64_t> host_cursor_;
  mutable PrefixTrie<Asn> prefix2as_;
  mutable bool prefix2as_dirty_ = true;
};

}  // namespace manic::topo
