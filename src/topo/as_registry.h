// The external datasets bdrmap consumes (§3.2), generated synthetically:
//  - AS relationships (CAIDA AS-rel analogue): customer/provider/peer,
//  - AS-to-organization mapping with sibling lists (AS2org analogue),
//  - IXP prefix list (PCH/peeringDB analogue).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "topo/ipv4.h"

namespace manic::topo {

using Asn = std::uint32_t;

enum class Relationship : std::uint8_t {
  kCustomer,  // the other AS is our customer
  kProvider,  // the other AS is our provider
  kPeer,      // settlement-free peer
};

// Relationship of `b` as seen from `a`; symmetric storage.
class RelationshipTable {
 public:
  void SetProviderCustomer(Asn provider, Asn customer);
  void SetPeers(Asn a, Asn b);

  // Relationship of `neighbor` from `asn`'s point of view.
  std::optional<Relationship> Get(Asn asn, Asn neighbor) const noexcept;

  std::vector<Asn> Neighbors(Asn asn) const;
  std::vector<Asn> Customers(Asn asn) const;
  std::vector<Asn> Providers(Asn asn) const;
  std::vector<Asn> Peers(Asn asn) const;

  std::size_t EdgeCount() const noexcept { return edge_count_; }

 private:
  void Set(Asn a, Asn b, Relationship rel_of_b_from_a);
  std::map<Asn, std::map<Asn, Relationship>> rel_;
  std::size_t edge_count_ = 0;
};

// Organization / sibling registry. The paper notes the automatic AS2org data
// is error-prone and describes a manual cleanup pass; we model both the
// (possibly noisy) automatic map and a curated override list.
class OrgMap {
 public:
  void Assign(Asn asn, std::string org);
  // Curated correction: force `asn` into `org` (the manual review in §3.2).
  void Override(Asn asn, std::string org);

  std::optional<std::string> OrgOf(Asn asn) const;
  // All ASes sharing asn's organization, including asn itself.
  std::vector<Asn> Siblings(Asn asn) const;
  bool AreSiblings(Asn a, Asn b) const;

 private:
  std::map<Asn, std::string> org_;
  std::map<Asn, std::string> overrides_;
  const std::string* Effective(Asn asn) const;
};

class IxpRegistry {
 public:
  void Add(const Prefix& prefix, std::string name);
  bool IsIxpAddress(Ipv4Addr addr) const noexcept;
  std::optional<std::string> IxpName(Ipv4Addr addr) const;
  std::size_t size() const noexcept { return prefixes_.size(); }

 private:
  std::vector<std::pair<Prefix, std::string>> prefixes_;
};

}  // namespace manic::topo
