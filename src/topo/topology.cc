#include "topo/topology.h"

#include <cassert>
#include <stdexcept>

namespace manic::topo {

AsInfo& Topology::AddAs(Asn asn, std::string name) {
  auto [it, inserted] = ases_.try_emplace(asn);
  if (inserted) {
    it->second.asn = asn;
    it->second.name = std::move(name);
    orgs.Assign(asn, it->second.name);
  }
  return it->second;
}

RouterId Topology::AddRouter(Asn asn, std::string name, std::string city,
                             int utc_offset_hours) {
  auto it = ases_.find(asn);
  if (it == ases_.end()) {
    throw std::invalid_argument("AddRouter: unknown AS " + std::to_string(asn));
  }
  Router r;
  r.id = static_cast<RouterId>(routers_.size());
  r.owner = asn;
  r.name = std::move(name);
  r.city = std::move(city);
  r.utc_offset_hours = utc_offset_hours;
  routers_.push_back(std::move(r));
  it->second.routers.push_back(routers_.back().id);
  return routers_.back().id;
}

void Topology::Announce(Asn asn, const Prefix& prefix) {
  AddAs(asn, "AS" + std::to_string(asn)).announced.push_back(prefix);
  prefix2as_dirty_ = true;
}

void Topology::AddInfrastructure(Asn asn, const Prefix& prefix) {
  AddAs(asn, "AS" + std::to_string(asn)).infrastructure.push_back(prefix);
}

IfaceId Topology::NewIface(RouterId router, LinkId link, Ipv4Addr addr,
                           Asn owner) {
  Interface ifc;
  ifc.id = static_cast<IfaceId>(ifaces_.size());
  ifc.addr = addr;
  ifc.router = router;
  ifc.link = link;
  ifc.addr_owner = owner;
  ifaces_.push_back(ifc);
  routers_[router].interfaces.push_back(ifc.id);
  addr_index_[addr.value()] = ifc.id;
  return ifc.id;
}

Ipv4Addr Topology::AllocFromPrefix(const Prefix& p, std::uint64_t* cursor,
                                   Ipv4Addr* second) {
  // Point-to-point pairs: skip network/broadcast-ish first addresses.
  const std::uint64_t offset = 2 + (*cursor) * 2;
  if (offset + 1 >= p.Size()) {
    throw std::runtime_error("address pool exhausted: " + p.ToString());
  }
  *cursor += 1;
  const Ipv4Addr first(p.address().value() + static_cast<std::uint32_t>(offset));
  if (second != nullptr) *second = Ipv4Addr(first.value() + 1);
  return first;
}

Ipv4Addr Topology::AllocInfraPair(Asn asn, Ipv4Addr* second) {
  auto it = ases_.find(asn);
  if (it == ases_.end() || it->second.infrastructure.empty()) {
    throw std::runtime_error("no infrastructure pool for AS " +
                             std::to_string(asn));
  }
  std::uint64_t& cursor = infra_cursor_[asn];
  // Walk pools in order; each pool hosts Size()/2 - 1 pairs.
  std::uint64_t c = cursor;
  for (const Prefix& p : it->second.infrastructure) {
    const std::uint64_t pairs_here = p.Size() / 2 - 1;
    if (c < pairs_here) {
      std::uint64_t local = c;
      ++cursor;
      return AllocFromPrefix(p, &local, second);
    }
    c -= pairs_here;
  }
  throw std::runtime_error("infrastructure pools exhausted for AS " +
                           std::to_string(asn));
}

Ipv4Addr Topology::AllocSingle(Asn asn) {
  Ipv4Addr unused;
  return AllocInfraPair(asn, &unused);
}

LinkId Topology::ConnectIntra(RouterId a, RouterId b, LinkParams params) {
  if (routers_[a].owner != routers_[b].owner) {
    throw std::invalid_argument("ConnectIntra: routers in different ASes");
  }
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.kind = LinkKind::kIntra;
  l.router_a = a;
  l.router_b = b;
  l.as_a = routers_[a].owner;
  l.as_b = routers_[b].owner;
  l.params = params;
  links_.push_back(l);
  Ipv4Addr addr_b;
  const Ipv4Addr addr_a = AllocInfraPair(l.as_a, &addr_b);
  links_.back().iface_a = NewIface(a, l.id, addr_a, l.as_a);
  links_.back().iface_b = NewIface(b, l.id, addr_b, l.as_a);
  return l.id;
}

LinkId Topology::ConnectInter(RouterId a, RouterId b, LinkParams params,
                              std::optional<Asn> addr_from) {
  if (routers_[a].owner == routers_[b].owner) {
    throw std::invalid_argument("ConnectInter: routers in the same AS");
  }
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.kind = LinkKind::kInterdomain;
  l.router_a = a;
  l.router_b = b;
  l.as_a = routers_[a].owner;
  l.as_b = routers_[b].owner;
  l.params = params;
  links_.push_back(l);
  const Asn pool = addr_from.value_or(l.as_a);
  Ipv4Addr addr_b;
  const Ipv4Addr addr_a = AllocInfraPair(pool, &addr_b);
  links_.back().iface_a = NewIface(a, l.id, addr_a, pool);
  links_.back().iface_b = NewIface(b, l.id, addr_b, pool);
  return l.id;
}

LinkId Topology::ConnectAtIxp(RouterId a, RouterId b, const Prefix& ixp_prefix,
                              std::string ixp_name, LinkParams params) {
  if (!ixps.IsIxpAddress(ixp_prefix.First())) {
    ixps.Add(ixp_prefix, ixp_name);
  }
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.kind = LinkKind::kIxp;
  l.router_a = a;
  l.router_b = b;
  l.as_a = routers_[a].owner;
  l.as_b = routers_[b].owner;
  l.params = params;
  links_.push_back(l);
  std::uint64_t& cursor = ixp_cursor_[ixp_name];
  Ipv4Addr addr_b;
  std::uint64_t local = cursor++;
  const Ipv4Addr addr_a = AllocFromPrefix(ixp_prefix, &local, &addr_b);
  links_.back().iface_a = NewIface(a, l.id, addr_a, 0);
  links_.back().iface_b = NewIface(b, l.id, addr_b, 0);
  return l.id;
}

VpId Topology::AddVantagePoint(std::string name, Asn host_as,
                               RouterId first_hop) {
  const auto it = ases_.find(host_as);
  if (it == ases_.end() || it->second.announced.empty()) {
    throw std::invalid_argument("AddVantagePoint: AS has no announced space");
  }
  VantagePoint vp;
  vp.id = static_cast<VpId>(vps_.size());
  vp.name = std::move(name);
  vp.host_as = host_as;
  vp.first_hop = first_hop;
  // Host addresses come from the tail half of the first announced prefix so
  // they never collide with probe destinations (head of each prefix).
  const Prefix& home = it->second.announced.front();
  std::uint64_t& cursor = host_cursor_[host_as];
  const std::uint64_t offset = home.Size() / 2 + cursor++;
  if (offset >= home.Size()) throw std::runtime_error("VP pool exhausted");
  vp.addr = Ipv4Addr(home.address().value() + static_cast<std::uint32_t>(offset));

  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.kind = LinkKind::kHostUplink;
  l.router_a = first_hop;
  l.router_b = kInvalidId;  // host side has no router
  l.as_a = host_as;
  l.as_b = host_as;
  l.params = kHostUplinkParams;
  links_.push_back(l);
  links_.back().iface_a = NewIface(first_hop, l.id, AllocSingle(host_as), host_as);
  links_.back().iface_b = kInvalidId;
  vp.uplink = l.id;
  vps_.push_back(vp);
  return vp.id;
}

const AsInfo* Topology::FindAs(Asn asn) const noexcept {
  const auto it = ases_.find(asn);
  return it == ases_.end() ? nullptr : &it->second;
}

std::optional<IfaceId> Topology::IfaceByAddr(Ipv4Addr addr) const noexcept {
  const auto it = addr_index_.find(addr.value());
  if (it == addr_index_.end()) return std::nullopt;
  return it->second;
}

RouterId Topology::PeerRouter(const Link& link, RouterId from) const noexcept {
  return link.router_a == from ? link.router_b : link.router_a;
}

IfaceId Topology::IfaceOn(const Link& link, RouterId r) const noexcept {
  return link.router_a == r ? link.iface_a : link.iface_b;
}

std::vector<LinkId> Topology::LinksOf(RouterId r,
                                      std::optional<LinkKind> kind) const {
  std::vector<LinkId> out;
  for (const IfaceId ifc : routers_[r].interfaces) {
    const Link& l = links_[ifaces_[ifc].link];
    if (!kind || l.kind == *kind) out.push_back(l.id);
  }
  return out;
}

std::vector<LinkId> Topology::InterdomainLinksBetween(Asn a, Asn b) const {
  std::vector<LinkId> out;
  for (const Link& l : links_) {
    if (l.kind != LinkKind::kInterdomain && l.kind != LinkKind::kIxp) continue;
    if ((l.as_a == a && l.as_b == b) || (l.as_a == b && l.as_b == a)) {
      out.push_back(l.id);
    }
  }
  return out;
}

const PrefixTrie<Asn>& Topology::Prefix2As() const {
  if (prefix2as_dirty_) {
    prefix2as_ = PrefixTrie<Asn>();
    for (const auto& [asn, info] : ases_) {
      for (const Prefix& p : info.announced) prefix2as_.Insert(p, asn);
    }
    prefix2as_dirty_ = false;
  }
  return prefix2as_;
}

std::optional<Ipv4Addr> Topology::DestinationIn(Asn asn,
                                                std::size_t index) const {
  const AsInfo* info = FindAs(asn);
  if (info == nullptr || info->announced.empty()) return std::nullopt;
  const Prefix& p = info->announced[index % info->announced.size()];
  const std::uint64_t offset = 10 + index / info->announced.size();
  if (offset >= p.Size() / 2) return std::nullopt;
  return Ipv4Addr(p.address().value() + static_cast<std::uint32_t>(offset));
}

std::vector<std::pair<Prefix, Asn>> Topology::RoutedPrefixes() const {
  std::vector<std::pair<Prefix, Asn>> out;
  for (const auto& [asn, info] : ases_) {
    for (const Prefix& p : info.announced) out.push_back({p, asn});
  }
  return out;
}

}  // namespace manic::topo
