#include "topo/ipv4.h"

#include <charconv>

namespace manic::topo {

std::string Ipv4Addr::ToString() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (!out.empty()) out += '.';
    out += std::to_string((value_ >> shift) & 0xffu);
  }
  return out;
}

std::optional<Ipv4Addr> Ipv4Addr::Parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned part = 0;
    const auto [next, ec] = std::from_chars(p, end, part);
    if (ec != std::errc{} || part > 255) return std::nullopt;
    value = (value << 8) | part;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Prefix::ToString() const {
  return addr_.ToString() + '/' + std::to_string(len_);
}

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::Parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  const std::string_view len_text = text.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      len < 0 || len > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, len);
}

}  // namespace manic::topo
