#include "topo/as_registry.h"

namespace manic::topo {

void RelationshipTable::Set(Asn a, Asn b, Relationship rel_of_b_from_a) {
  auto& slot = rel_[a][b];
  slot = rel_of_b_from_a;
}

void RelationshipTable::SetProviderCustomer(Asn provider, Asn customer) {
  if (Get(provider, customer) == std::nullopt) ++edge_count_;
  Set(provider, customer, Relationship::kCustomer);
  Set(customer, provider, Relationship::kProvider);
}

void RelationshipTable::SetPeers(Asn a, Asn b) {
  if (Get(a, b) == std::nullopt) ++edge_count_;
  Set(a, b, Relationship::kPeer);
  Set(b, a, Relationship::kPeer);
}

std::optional<Relationship> RelationshipTable::Get(Asn asn,
                                                   Asn neighbor) const noexcept {
  const auto row = rel_.find(asn);
  if (row == rel_.end()) return std::nullopt;
  const auto cell = row->second.find(neighbor);
  if (cell == row->second.end()) return std::nullopt;
  return cell->second;
}

namespace {
std::vector<Asn> Collect(const std::map<Asn, std::map<Asn, Relationship>>& rel,
                         Asn asn, std::optional<Relationship> want) {
  std::vector<Asn> out;
  const auto row = rel.find(asn);
  if (row == rel.end()) return out;
  for (const auto& [neighbor, r] : row->second) {
    if (!want || r == *want) out.push_back(neighbor);
  }
  return out;
}
}  // namespace

std::vector<Asn> RelationshipTable::Neighbors(Asn asn) const {
  return Collect(rel_, asn, std::nullopt);
}
std::vector<Asn> RelationshipTable::Customers(Asn asn) const {
  return Collect(rel_, asn, Relationship::kCustomer);
}
std::vector<Asn> RelationshipTable::Providers(Asn asn) const {
  return Collect(rel_, asn, Relationship::kProvider);
}
std::vector<Asn> RelationshipTable::Peers(Asn asn) const {
  return Collect(rel_, asn, Relationship::kPeer);
}

void OrgMap::Assign(Asn asn, std::string org) { org_[asn] = std::move(org); }

void OrgMap::Override(Asn asn, std::string org) {
  overrides_[asn] = std::move(org);
}

const std::string* OrgMap::Effective(Asn asn) const {
  if (const auto it = overrides_.find(asn); it != overrides_.end()) {
    return &it->second;
  }
  if (const auto it = org_.find(asn); it != org_.end()) return &it->second;
  return nullptr;
}

std::optional<std::string> OrgMap::OrgOf(Asn asn) const {
  const std::string* org = Effective(asn);
  if (org == nullptr) return std::nullopt;
  return *org;
}

std::vector<Asn> OrgMap::Siblings(Asn asn) const {
  std::vector<Asn> out;
  const std::string* org = Effective(asn);
  if (org == nullptr) return {asn};
  std::set<Asn> all;
  for (const auto& [a, o] : org_) {
    if (*Effective(a) == *org) all.insert(a);
  }
  for (const auto& [a, o] : overrides_) {
    if (o == *org) all.insert(a);
  }
  all.insert(asn);
  out.assign(all.begin(), all.end());
  return out;
}

bool OrgMap::AreSiblings(Asn a, Asn b) const {
  if (a == b) return true;
  const std::string* oa = Effective(a);
  const std::string* ob = Effective(b);
  return oa != nullptr && ob != nullptr && *oa == *ob;
}

void IxpRegistry::Add(const Prefix& prefix, std::string name) {
  prefixes_.push_back({prefix, std::move(name)});
}

bool IxpRegistry::IsIxpAddress(Ipv4Addr addr) const noexcept {
  for (const auto& [p, name] : prefixes_) {
    if (p.Contains(addr)) return true;
  }
  return false;
}

std::optional<std::string> IxpRegistry::IxpName(Ipv4Addr addr) const {
  for (const auto& [p, name] : prefixes_) {
    if (p.Contains(addr)) return name;
  }
  return std::nullopt;
}

}  // namespace manic::topo
